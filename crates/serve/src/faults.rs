//! Deterministic fault injection for the durability layer
//! (`--features fault-injection` only; nothing here exists in a normal
//! build, like the allocation-counting harness the crate already
//! carries for its zero-alloc guarantee).
//!
//! A [`FaultPlan`] is a pre-declared, index-addressed schedule of
//! failures — *which record* tears, *which append* errors, *which
//! command* panics — so a chaos test can replay the exact same crash on
//! every run and assert byte-level recovery outcomes, instead of hoping
//! a random sleep hits the window. Clones share state: hand one clone to
//! [`crate::HostOptions::faults`] (or [`crate::WalStore::with_faults`])
//! and keep the other to steer the run from the test thread.
//!
//! Three fault families, two index spaces:
//!
//! - **I/O faults** ([`FaultPlan::io_error_at`], [`FaultPlan::torn_write_at`])
//!   are indexed by *WAL record* (the n-th append since the store
//!   opened). An error append writes nothing; a torn append writes a
//!   strict prefix of the record and then fails — the on-disk state a
//!   crash mid-`write_all` leaves behind.
//! - **Writer panics** ([`FaultPlan::panic_at`], [`FaultPlan::lethal_panic_at`])
//!   are indexed by *command* (the n-th non-shutdown command the writer
//!   drains). A plain panic fires inside the writer's `catch_unwind`
//!   containment (the host degrades and keeps serving); a *lethal* panic
//!   fires outside it, killing the writer thread — the scenario the
//!   non-aborting `Drop`/[`crate::HostHealth::Failed`] path exists for.
//! - **The stall gate** ([`FaultPlan::stall`] / [`FaultPlan::release`])
//!   parks the writer *between* commands, so a test can fill the bounded
//!   queue deterministically and observe overflow-policy behavior
//!   (drops, coalescing, `send_timeout`) without racing the drain.
//!
//! [`FaultPlan::seeded`] derives a reproducible schedule from a seed for
//! soak-style sweeps; every index is also settable explicitly.

use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex};

/// What an injected I/O fault does to the append that hits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoFault {
    /// The append fails before writing anything.
    Error,
    /// A strict prefix of the record reaches the file, then the append
    /// fails — a torn final write.
    Torn,
}

#[derive(Debug, Default)]
struct Shared {
    stalled: Mutex<bool>,
    resume: Condvar,
}

/// A deterministic, shareable fault schedule. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    io_errors: BTreeSet<u64>,
    torn: BTreeSet<u64>,
    panics: BTreeSet<u64>,
    lethal: BTreeSet<u64>,
    shared: Arc<Shared>,
}

impl FaultPlan {
    /// An empty plan: no faults, gate open.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derives a reproducible schedule from `seed`: one clean I/O error,
    /// one torn write, and one contained writer panic, each at a
    /// pseudo-random index below `horizon` (xorshift64*, so the same
    /// seed yields the same crash on every machine).
    pub fn seeded(seed: u64, horizon: u64) -> FaultPlan {
        let horizon = horizon.max(1);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d) % horizon
        };
        FaultPlan::new()
            .io_error_at(next())
            .torn_write_at(next())
            .panic_at(next())
    }

    /// Fails the append of the given WAL record index (0-based) with an
    /// I/O error, writing nothing.
    pub fn io_error_at(mut self, record: u64) -> FaultPlan {
        self.io_errors.insert(record);
        self
    }

    /// Tears the append of the given WAL record index: a strict prefix
    /// of the record's bytes is written, then the append fails.
    pub fn torn_write_at(mut self, record: u64) -> FaultPlan {
        self.torn.insert(record);
        self
    }

    /// Panics while *processing* the given command index (0-based over
    /// the writer's non-shutdown commands) — inside the containment, so
    /// the host degrades but keeps serving.
    pub fn panic_at(mut self, command: u64) -> FaultPlan {
        self.panics.insert(command);
        self
    }

    /// Panics *outside* the containment at the given command index,
    /// killing the writer thread (host health becomes `Failed`).
    pub fn lethal_panic_at(mut self, command: u64) -> FaultPlan {
        self.lethal.insert(command);
        self
    }

    /// Closes the gate: the writer parks before draining its next
    /// command until [`FaultPlan::release`] is called.
    pub fn stall(&self) {
        *self.shared.stalled.lock().unwrap() = true;
    }

    /// Opens the gate and wakes a stalled writer.
    pub fn release(&self) {
        *self.shared.stalled.lock().unwrap() = false;
        self.shared.resume.notify_all();
    }

    pub(crate) fn io_fault(&self, record: u64) -> Option<IoFault> {
        if self.io_errors.contains(&record) {
            Some(IoFault::Error)
        } else if self.torn.contains(&record) {
            Some(IoFault::Torn)
        } else {
            None
        }
    }

    pub(crate) fn wait_if_stalled(&self) {
        let mut stalled = self.shared.stalled.lock().unwrap();
        while *stalled {
            stalled = self.shared.resume.wait(stalled).unwrap();
        }
    }

    pub(crate) fn check_contained_panic(&self, command: u64) {
        if self.panics.contains(&command) {
            panic!("injected writer panic at command {command}");
        }
    }

    pub(crate) fn check_lethal_panic(&self, command: u64) {
        if self.lethal.contains(&command) {
            panic!("injected lethal writer panic at command {command}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::seeded(9, 50);
        let b = FaultPlan::seeded(9, 50);
        assert_eq!(a.io_errors, b.io_errors);
        assert_eq!(a.torn, b.torn);
        assert_eq!(a.panics, b.panics);
        for idx in a.io_errors.iter().chain(&a.torn).chain(&a.panics) {
            assert!(*idx < 50);
        }
        let c = FaultPlan::seeded(10, 50);
        assert!(a.io_errors != c.io_errors || a.torn != c.torn || a.panics != c.panics);
    }

    #[test]
    fn clones_share_the_stall_gate() {
        let plan = FaultPlan::new();
        let clone = plan.clone();
        plan.stall();
        assert!(*clone.shared.stalled.lock().unwrap());
        clone.release();
        assert!(!*plan.shared.stalled.lock().unwrap());
        // An open gate never blocks.
        plan.wait_if_stalled();
    }

    #[test]
    fn fault_lookups_hit_only_their_indices() {
        let plan = FaultPlan::new()
            .io_error_at(3)
            .torn_write_at(5)
            .panic_at(7)
            .lethal_panic_at(9);
        assert_eq!(plan.io_fault(3), Some(IoFault::Error));
        assert_eq!(plan.io_fault(5), Some(IoFault::Torn));
        assert_eq!(plan.io_fault(4), None);
        plan.check_contained_panic(6); // no panic
        plan.check_lethal_panic(8); // no panic
    }

    #[test]
    #[should_panic(expected = "injected writer panic at command 2")]
    fn contained_panic_fires_at_its_index() {
        FaultPlan::new().panic_at(2).check_contained_panic(2);
    }
}
