//! Durable serving state: versioned checkpoints + an observation WAL.
//!
//! The serve layer's writer owns the only mutable model, so crash safety
//! reduces to persisting the *inputs* of that single writer:
//!
//! - A **checkpoint** captures everything [`hypermine_core::AssociationModel::build`]
//!   needs to reproduce the model bit-identically — the windowed
//!   [`Database`], the full [`ModelConfig`], and the epoch stamp — in a
//!   versioned binary file sealed by an FNV-1a checksum (the same
//!   function, same constants, as [`crate::ModelSnapshot`]'s content
//!   digest). The mined hypergraph, serving indexes, and incremental
//!   state are deliberately **not** persisted: `build` is a pure function
//!   of `(db, config)` and the engine's `advance`/`advance_batch`/
//!   `retire_oldest` are property-tested bit-identical to batch rebuilds,
//!   so recovery recomputes them instead of trusting bytes on disk.
//! - A **write-ahead log** (actually a commit log: records are appended
//!   *after* the model accepts a mutation, so rejected commands never
//!   replay) holds the observations applied since the checkpoint as
//!   length-prefixed, per-record-checksummed [`WalRecord`]s. Segments
//!   rotate at a configurable byte budget; every rotation writes a fresh
//!   checkpoint first (via a temp file + atomic rename), so recovery only
//!   ever replays the newest segment.
//!
//! [`recover`] loads the newest checkpoint, rebuilds the model via
//! [`AssociationModel::restore`], and replays the paired segment tail.
//! A **truncated final record** — the torn write of a crash mid-append —
//! is tolerated and discarded; recovery then reflects the last fully
//! durable record. Any other malformed byte (a checksum mismatch, a
//! corrupt header, garbage mid-log) is a hard [`RecoverError`]: silently
//! skipping it would serve a model that disagrees with what was
//! acknowledged before the crash.
//!
//! Durability granularity: each append is `write_all`'d to the segment
//! file immediately (no userspace buffering), so state survives *process*
//! crashes as soon as `append` returns; `File::sync_all` runs on rotation
//! and shutdown, so power-loss durability is at segment granularity.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use hypermine_core::{
    AssociationModel, CountStrategy, KernelPath, ModelConfig, SimdPolicy,
};
use hypermine_data::{Database, Value};

#[cfg(feature = "fault-injection")]
use crate::faults::{FaultPlan, IoFault};

/// Checkpoint file header; the trailing byte is the format version.
const CKPT_MAGIC: &[u8; 8] = b"HMCKPT\x00\x01";
/// WAL segment file header; the trailing byte is the format version.
const WAL_MAGIC: &[u8; 8] = b"HMWAL\x00\x00\x01";
/// Upper bound on one record's payload; anything larger mid-log is
/// treated as corruption rather than an allocation request.
const MAX_RECORD_BYTES: u32 = 1 << 26;
/// Default segment rotation budget (see [`WalStore::create`]).
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// One durable observation-stream record. Mirrors the loggable subset of
/// [`crate::StreamCmd`] (`Shutdown` is a control message, not state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One observation appended, oldest retired (window slides by one).
    Advance(Vec<Value>),
    /// Several observations applied as one batch (one publish).
    AdvanceBatch(Vec<Vec<Value>>),
    /// Window contracted from the old end (calendar gap).
    Retire,
}

const TAG_ADVANCE: u8 = 1;
const TAG_BATCH: u8 = 2;
const TAG_RETIRE: u8 = 3;

/// Why [`recover`] refused to produce a model.
#[derive(Debug)]
pub enum RecoverError {
    /// The directory has no readable checkpoint to start from.
    NoCheckpoint(PathBuf),
    /// Filesystem error while reading the store.
    Io(io::Error),
    /// A file's bytes are malformed beyond the tolerated torn tail:
    /// bad magic, a failed checksum, an impossible length, or trailing
    /// garbage mid-log.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Byte offset of the malformed structure.
        offset: u64,
        /// What was wrong there.
        what: String,
    },
    /// The checkpoint or a replayed record was structurally valid but the
    /// model rejected it — the store and the engine disagree, which only
    /// happens when the log is forged or the format drifted.
    Replay(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::NoCheckpoint(dir) => {
                write!(f, "no checkpoint found under {}", dir.display())
            }
            RecoverError::Io(e) => write!(f, "i/o error reading the store: {e}"),
            RecoverError::Corrupt { file, offset, what } => write!(
                f,
                "corrupt store file {} at byte {offset}: {what}",
                file.display()
            ),
            RecoverError::Replay(what) => write!(f, "replay rejected by the model: {what}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What [`recover`] did, alongside the rebuilt model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Segment sequence number the recovery was based on.
    pub seq: u64,
    /// Epoch stamped in the checkpoint (before WAL replay).
    pub checkpoint_epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Epoch of the recovered model (checkpoint + replay).
    pub epoch: u64,
    /// Whether a truncated final record (torn write) was discarded.
    pub torn_tail: bool,
}

/// The writer-side handle: appends records to the live segment and
/// rotates — checkpoint first, then a fresh segment — once the byte
/// budget is exceeded.
#[derive(Debug)]
pub struct WalStore {
    dir: PathBuf,
    segment_bytes: u64,
    seq: u64,
    file: File,
    segment_len: u64,
    records: u64,
    #[cfg(feature = "fault-injection")]
    faults: Option<FaultPlan>,
}

impl WalStore {
    /// Starts a fresh store under `dir` (created if missing): writes
    /// checkpoint 0 for `model` and opens segment 0. Refuses a directory
    /// that already contains store files — recover from those instead of
    /// silently shadowing them.
    ///
    /// `segment_bytes` is the rotation budget; `0` means
    /// [`DEFAULT_SEGMENT_BYTES`].
    pub fn create(dir: &Path, segment_bytes: u64, model: &AssociationModel) -> io::Result<WalStore> {
        fs::create_dir_all(dir)?;
        if max_checkpoint_seq(dir)?.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds a durable store; recover from it or point at an empty dir",
                    dir.display()
                ),
            ));
        }
        Self::start_at(dir, segment_bytes, model, 0)
    }

    /// Continues a recovered store: writes a fresh checkpoint for the
    /// recovered `model` at `seq` (one past the recovered segment) and
    /// opens the paired segment. The pre-crash files stay untouched.
    pub fn continue_from(
        dir: &Path,
        segment_bytes: u64,
        model: &AssociationModel,
        seq: u64,
    ) -> io::Result<WalStore> {
        Self::start_at(dir, segment_bytes, model, seq)
    }

    fn start_at(
        dir: &Path,
        segment_bytes: u64,
        model: &AssociationModel,
        seq: u64,
    ) -> io::Result<WalStore> {
        let segment_bytes = if segment_bytes == 0 {
            DEFAULT_SEGMENT_BYTES
        } else {
            segment_bytes
        };
        write_checkpoint(dir, seq, model)?;
        let path = segment_path(dir, seq);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(WAL_MAGIC);
        push_u64(&mut header, seq);
        file.write_all(&header)?;
        Ok(WalStore {
            dir: dir.to_path_buf(),
            segment_bytes,
            seq,
            file,
            segment_len: header.len() as u64,
            records: 0,
            #[cfg(feature = "fault-injection")]
            faults: None,
        })
    }

    /// Attaches a deterministic fault plan: subsequent appends consult it
    /// by record index and fail (or tear) where the plan says to.
    #[cfg(feature = "fault-injection")]
    pub fn with_faults(mut self, plan: FaultPlan) -> WalStore {
        self.faults = Some(plan);
        self
    }

    /// Appends one record and pushes it to the OS before returning.
    ///
    /// On error nothing is logically appended — recovery discards a
    /// partial tail — but the store must not be appended to afterwards
    /// (a later record after a hole would replay out of order), so hosts
    /// freeze durability on the first failed append.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let bytes = encode_record(record);
        #[cfg(feature = "fault-injection")]
        if let Some(fault) = self.faults.as_ref().and_then(|p| p.io_fault(self.records)) {
            match fault {
                IoFault::Error => {
                    return Err(io::Error::other(format!(
                        "injected i/o error at record {}",
                        self.records
                    )));
                }
                IoFault::Torn => {
                    // A crash mid-`write_all`: a strict prefix of the
                    // record reaches the disk.
                    let cut = (bytes.len() / 2).max(1);
                    self.file.write_all(&bytes[..cut])?;
                    self.segment_len += cut as u64;
                    return Err(io::Error::other(format!(
                        "injected torn write at record {} ({cut} of {} bytes)",
                        self.records,
                        bytes.len()
                    )));
                }
            }
        }
        self.file.write_all(&bytes)?;
        self.segment_len += bytes.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Rotates — fresh checkpoint for `model`, fresh segment — if the
    /// live segment exceeded the byte budget. Returns whether it did.
    pub fn maybe_rotate(&mut self, model: &AssociationModel) -> io::Result<bool> {
        if self.segment_len < self.segment_bytes {
            return Ok(false);
        }
        self.file.sync_all()?;
        let next = Self::start_at(&self.dir, self.segment_bytes, model, self.seq + 1)?;
        let records = self.records;
        *self = next;
        self.records = records;
        Ok(true)
    }

    /// Fsyncs the live segment (power-loss durability up to here).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live segment's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records appended through this handle (across rotations).
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl Drop for WalStore {
    fn drop(&mut self) {
        let _ = self.file.sync_all();
    }
}

/// Rebuilds the model a crashed writer would have held: newest
/// checkpoint, then the paired WAL segment's records in order. See the
/// module docs for the exact tolerance/corruption contract.
pub fn recover(dir: &Path) -> Result<(AssociationModel, RecoveryInfo), RecoverError> {
    let seq = max_checkpoint_seq(dir)?.ok_or_else(|| RecoverError::NoCheckpoint(dir.to_path_buf()))?;
    let ckpt_path = checkpoint_path(dir, seq);
    let bytes = fs::read(&ckpt_path)?;
    let (db, cfg, checkpoint_epoch) = decode_checkpoint(&bytes, &ckpt_path)?;
    let mut model = AssociationModel::restore(&db, &cfg, checkpoint_epoch)
        .map_err(|e| RecoverError::Replay(format!("checkpoint rebuild failed: {e}")))?;

    let seg_path = segment_path(dir, seq);
    let mut replayed = 0u64;
    let mut torn_tail = false;
    // A missing segment is the crash window between the checkpoint rename
    // and the segment create during rotation: zero records were lost.
    if seg_path.exists() {
        let bytes = fs::read(&seg_path)?;
        let mut tail = TailReader::new(&bytes, &seg_path)?;
        if tail.seq != seq {
            return Err(corrupt(
                &seg_path,
                8,
                format!("segment header seq {} does not match filename seq {seq}", tail.seq),
            ));
        }
        while let Some(record) = tail.next_record()? {
            apply(&mut model, &record)?;
            replayed += 1;
        }
        torn_tail = tail.torn_tail;
    }

    let epoch = model.epoch();
    Ok((
        model,
        RecoveryInfo {
            seq,
            checkpoint_epoch,
            replayed,
            epoch,
            torn_tail,
        },
    ))
}

fn apply(model: &mut AssociationModel, record: &WalRecord) -> Result<(), RecoverError> {
    let outcome = match record {
        WalRecord::Advance(row) => model.advance(row),
        WalRecord::AdvanceBatch(rows) => model.advance_batch(rows),
        WalRecord::Retire => model.retire_oldest(),
    };
    outcome
        .map(|_| ())
        .map_err(|e| RecoverError::Replay(e.to_string()))
}

/// Sequential record reader over one segment's bytes, with the torn-tail
/// tolerance baked into `next_record`.
struct TailReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
    seq: u64,
    torn_tail: bool,
}

impl<'a> TailReader<'a> {
    fn new(bytes: &'a [u8], path: &'a Path) -> Result<Self, RecoverError> {
        if bytes.len() < 16 {
            // Even the header is incomplete: the crash hit segment
            // creation itself; no records can have been acknowledged.
            return Ok(TailReader {
                bytes: &[],
                pos: 0,
                path,
                seq: u64::MAX,
                torn_tail: true,
            });
        }
        if &bytes[..8] != WAL_MAGIC {
            return Err(corrupt(path, 0, "bad WAL magic".into()));
        }
        let seq = read_u64(bytes, 8);
        Ok(TailReader {
            bytes,
            pos: 16,
            path,
            seq,
            torn_tail: false,
        })
    }

    /// `Ok(None)` on a clean end *or* a tolerated torn tail (flagged);
    /// `Err` on anything malformed before the end.
    fn next_record(&mut self) -> Result<Option<WalRecord>, RecoverError> {
        // Empty-header sentinel (see `new`).
        if self.seq == u64::MAX {
            return Ok(None);
        }
        let remaining = self.bytes.len() - self.pos;
        if remaining == 0 {
            return Ok(None);
        }
        if remaining < 4 {
            self.torn_tail = true;
            return Ok(None);
        }
        let len = read_u32(self.bytes, self.pos);
        if len == 0 || len > MAX_RECORD_BYTES {
            return Err(corrupt(
                self.path,
                self.pos as u64,
                format!("impossible record length {len}"),
            ));
        }
        let total = 4 + len as usize + 8;
        if remaining < total {
            // The record's declared extent runs past the file: the torn
            // final write of a crash mid-append.
            self.torn_tail = true;
            return Ok(None);
        }
        let payload = &self.bytes[self.pos + 4..self.pos + 4 + len as usize];
        let stored = read_u64(self.bytes, self.pos + 4 + len as usize);
        let computed = fnv_bytes(payload);
        if stored != computed {
            return Err(corrupt(
                self.path,
                self.pos as u64,
                format!("record checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"),
            ));
        }
        let record = decode_payload(payload)
            .ok_or_else(|| corrupt(self.path, self.pos as u64, "malformed record payload".into()))?;
        self.pos += total;
        Ok(Some(record))
    }
}

// ---------------------------------------------------------------------------
// Checkpoint encode / decode
// ---------------------------------------------------------------------------

fn write_checkpoint(dir: &Path, seq: u64, model: &AssociationModel) -> io::Result<()> {
    let bytes = encode_checkpoint(model);
    // Temp-write + rename so a checkpoint either exists whole or not at
    // all; a crash mid-rotation can never leave a torn checkpoint under
    // the final name.
    let tmp = dir.join(format!("checkpoint-{seq:08}.tmp"));
    let path = checkpoint_path(dir, seq);
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, &path)?;
    Ok(())
}

fn encode_checkpoint(model: &AssociationModel) -> Vec<u8> {
    let db = model.database();
    let cfg = model.config();
    let mut out = Vec::with_capacity(64 + db.num_attrs() * (16 + db.num_obs()));
    out.extend_from_slice(CKPT_MAGIC);
    push_u64(&mut out, model.epoch());
    // Config — every field, so a recovered build resolves strategies,
    // kernel caps, and SIMD policy exactly as the pre-crash writer did.
    push_u64(&mut out, cfg.gamma_edge.to_bits());
    push_u64(&mut out, cfg.gamma_hyper.to_bits());
    out.push(cfg.with_hyperedges as u8);
    push_u64(&mut out, cfg.threads as u64);
    out.push(match cfg.strategy {
        CountStrategy::Auto => 0,
        CountStrategy::Bitset => 1,
        CountStrategy::ObsMajor => 2,
    });
    out.push(match cfg.kernel_cap {
        KernelPath::FlatU16 => 0,
        KernelPath::FlatU32 => 1,
        KernelPath::Segmented => 2,
    });
    out.push(match cfg.simd {
        SimdPolicy::Auto => 0,
        SimdPolicy::ForceScalar => 1,
    });
    match cfg.triple_tensor_max_bytes {
        None => {
            out.push(0);
            push_u64(&mut out, 0);
        }
        Some(b) => {
            out.push(1);
            push_u64(&mut out, b as u64);
        }
    }
    // Database — names, k, and raw value columns; `Database::from_columns`
    // re-validates every byte on the way back in.
    out.push(db.k());
    push_u64(&mut out, db.num_attrs() as u64);
    push_u64(&mut out, db.num_obs() as u64);
    for name in db.attr_names() {
        push_u64(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
    for a in db.attrs() {
        out.extend_from_slice(db.column(a));
    }
    let checksum = fnv_bytes(&out);
    push_u64(&mut out, checksum);
    out
}

fn decode_checkpoint(
    bytes: &[u8],
    path: &Path,
) -> Result<(Database, ModelConfig, u64), RecoverError> {
    if bytes.len() < CKPT_MAGIC.len() + 8 {
        return Err(corrupt(path, 0, "checkpoint shorter than its header".into()));
    }
    if &bytes[..8] != CKPT_MAGIC {
        return Err(corrupt(path, 0, "bad checkpoint magic".into()));
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = read_u64(bytes, bytes.len() - 8);
    let computed = fnv_bytes(body);
    if stored != computed {
        return Err(corrupt(
            path,
            (bytes.len() - 8) as u64,
            format!("checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"),
        ));
    }
    let mut c = Cursor { bytes: body, pos: 8 };
    let fail = |c: &Cursor<'_>, what: &str| corrupt(path, c.pos as u64, what.into());

    let epoch = c.u64().ok_or_else(|| fail(&c, "truncated epoch"))?;
    let gamma_edge = f64::from_bits(c.u64().ok_or_else(|| fail(&c, "truncated gamma_edge"))?);
    let gamma_hyper = f64::from_bits(c.u64().ok_or_else(|| fail(&c, "truncated gamma_hyper"))?);
    let with_hyperedges = c.u8().ok_or_else(|| fail(&c, "truncated with_hyperedges"))? != 0;
    let threads = c.u64().ok_or_else(|| fail(&c, "truncated threads"))? as usize;
    let strategy = match c.u8().ok_or_else(|| fail(&c, "truncated strategy"))? {
        0 => CountStrategy::Auto,
        1 => CountStrategy::Bitset,
        2 => CountStrategy::ObsMajor,
        _ => return Err(fail(&c, "unknown strategy tag")),
    };
    let kernel_cap = match c.u8().ok_or_else(|| fail(&c, "truncated kernel_cap"))? {
        0 => KernelPath::FlatU16,
        1 => KernelPath::FlatU32,
        2 => KernelPath::Segmented,
        _ => return Err(fail(&c, "unknown kernel_cap tag")),
    };
    let simd = match c.u8().ok_or_else(|| fail(&c, "truncated simd"))? {
        0 => SimdPolicy::Auto,
        1 => SimdPolicy::ForceScalar,
        _ => return Err(fail(&c, "unknown simd tag")),
    };
    let tensor_tag = c.u8().ok_or_else(|| fail(&c, "truncated tensor budget tag"))?;
    let tensor_bytes = c.u64().ok_or_else(|| fail(&c, "truncated tensor budget"))?;
    let triple_tensor_max_bytes = match tensor_tag {
        0 => None,
        1 => Some(tensor_bytes as usize),
        _ => return Err(fail(&c, "unknown tensor budget tag")),
    };

    let k = c.u8().ok_or_else(|| fail(&c, "truncated k"))?;
    let num_attrs = c.u64().ok_or_else(|| fail(&c, "truncated attr count"))? as usize;
    let num_obs = c.u64().ok_or_else(|| fail(&c, "truncated obs count"))? as usize;
    if num_attrs > (u32::MAX as usize) || num_obs > MAX_RECORD_BYTES as usize {
        return Err(fail(&c, "impossible database dimensions"));
    }
    let mut names = Vec::with_capacity(num_attrs);
    for _ in 0..num_attrs {
        let len = c.u64().ok_or_else(|| fail(&c, "truncated name length"))? as usize;
        let raw = c.take(len).ok_or_else(|| fail(&c, "truncated name"))?;
        let name = std::str::from_utf8(raw).map_err(|_| fail(&c, "name is not UTF-8"))?;
        names.push(name.to_string());
    }
    let mut columns = Vec::with_capacity(num_attrs);
    for _ in 0..num_attrs {
        let col = c.take(num_obs).ok_or_else(|| fail(&c, "truncated column"))?;
        columns.push(col.to_vec());
    }
    if c.pos != body.len() {
        return Err(fail(&c, "trailing bytes after the database"));
    }

    let db = Database::from_columns(names, k, columns)
        .map_err(|e| RecoverError::Replay(format!("checkpoint database rejected: {e:?}")))?;
    let cfg = ModelConfig {
        gamma_edge,
        gamma_hyper,
        with_hyperedges,
        threads,
        strategy,
        kernel_cap,
        simd,
        triple_tensor_max_bytes,
    };
    Ok((db, cfg, epoch))
}

// ---------------------------------------------------------------------------
// Record encode / decode
// ---------------------------------------------------------------------------

fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    match record {
        WalRecord::Advance(row) => {
            payload.push(TAG_ADVANCE);
            push_u32(&mut payload, row.len() as u32);
            payload.extend_from_slice(row);
        }
        WalRecord::AdvanceBatch(rows) => {
            payload.push(TAG_BATCH);
            push_u32(&mut payload, rows.len() as u32);
            let width = rows.first().map_or(0, Vec::len);
            push_u32(&mut payload, width as u32);
            for row in rows {
                // Ragged batches never reach the log (the model rejects
                // them before the append), but keep decode unambiguous.
                debug_assert_eq!(row.len(), width);
                payload.extend_from_slice(row);
            }
        }
        WalRecord::Retire => payload.push(TAG_RETIRE),
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    push_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    push_u64(&mut out, fnv_bytes(&payload));
    out
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let record = match c.u8()? {
        TAG_ADVANCE => {
            let n = c.u32()? as usize;
            WalRecord::Advance(c.take(n)?.to_vec())
        }
        TAG_BATCH => {
            let rows = c.u32()? as usize;
            let width = c.u32()? as usize;
            let mut batch = Vec::with_capacity(rows);
            for _ in 0..rows {
                batch.push(c.take(width)?.to_vec());
            }
            WalRecord::AdvanceBatch(batch)
        }
        TAG_RETIRE => WalRecord::Retire,
        _ => return None,
    };
    (c.pos == payload.len()).then_some(record)
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:08}.bin"))
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

fn max_checkpoint_seq(dir: &Path) -> io::Result<Option<u64>> {
    let mut max = None;
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".bin"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        max = Some(max.map_or(seq, |m: u64| m.max(seq)));
    }
    Ok(max)
}

fn corrupt(path: &Path, offset: u64, what: String) -> RecoverError {
    RecoverError::Corrupt {
        file: path.to_path_buf(),
        offset,
        what,
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let raw = self.take(4)?;
        Some(u32::from_le_bytes(raw.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let raw = self.take(8)?;
        Some(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }
}

fn push_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn read_u32(bytes: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap())
}

/// FNV-1a over a byte slice — the same constants and byte order as the
/// snapshot digest's `Fnv` (which hashes u64s through their LE bytes), so
/// the store and the serving layer share one checksum function.
fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypermine_core::ModelConfig;

    fn fixture(window: usize) -> (Database, AssociationModel) {
        let x: Vec<Value> = (0..300).map(|i| (i % 3 + 1) as Value).collect();
        let y: Vec<Value> = (0..300).map(|i| ((i / 5) % 3 + 1) as Value).collect();
        let z: Vec<Value> = (0..300).map(|i| ((i / 7) % 3 + 1) as Value).collect();
        let d = Database::from_columns(
            vec!["x".into(), "y".into(), "z".into()],
            3,
            vec![x, y, z],
        )
        .unwrap();
        let model =
            AssociationModel::build(&d.slice_obs(0..window), &ModelConfig::default()).unwrap();
        (d, model)
    }

    fn row_at(d: &Database, o: usize) -> Vec<Value> {
        d.attrs().map(|a| d.value(a, o)).collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hypermine-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_roundtrips_database_config_and_epoch() {
        let (_, model) = fixture(100);
        let bytes = encode_checkpoint(&model);
        let (db, cfg, epoch) =
            decode_checkpoint(&bytes, Path::new("test.ckpt")).expect("roundtrip");
        assert_eq!(epoch, 0);
        assert_eq!(&cfg, model.config());
        assert_eq!(db.num_obs(), model.database().num_obs());
        assert_eq!(db.attr_names(), model.database().attr_names());
        for a in db.attrs() {
            assert_eq!(db.column(a), model.database().column(a));
        }
    }

    #[test]
    fn checkpoint_detects_a_flipped_byte() {
        let (_, model) = fixture(100);
        let mut bytes = encode_checkpoint(&model);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode_checkpoint(&bytes, Path::new("test.ckpt")).unwrap_err();
        assert!(matches!(err, RecoverError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn record_codec_roundtrips_every_variant() {
        let records = [
            WalRecord::Advance(vec![1, 2, 3]),
            WalRecord::AdvanceBatch(vec![vec![1, 1, 1], vec![2, 3, 1]]),
            WalRecord::Retire,
        ];
        for rec in &records {
            let bytes = encode_record(rec);
            let len = read_u32(&bytes, 0) as usize;
            let payload = &bytes[4..4 + len];
            assert_eq!(read_u64(&bytes, 4 + len), fnv_bytes(payload));
            assert_eq!(decode_payload(payload).as_ref(), Some(rec));
        }
    }

    #[test]
    fn recover_replays_checkpoint_plus_tail_bit_identically() {
        let (d, mut model) = fixture(100);
        let dir = tmp_dir("replay");
        let mut store = WalStore::create(&dir, 0, &model).unwrap();
        for o in 100..110 {
            model.advance(&row_at(&d, o)).unwrap();
            store.append(&WalRecord::Advance(row_at(&d, o))).unwrap();
        }
        model
            .advance_batch(&[row_at(&d, 110), row_at(&d, 111)])
            .unwrap();
        store
            .append(&WalRecord::AdvanceBatch(vec![row_at(&d, 110), row_at(&d, 111)]))
            .unwrap();
        model.retire_oldest().unwrap();
        store.append(&WalRecord::Retire).unwrap();
        drop(store);

        let (recovered, info) = recover(&dir).expect("recover");
        assert_eq!(info.seq, 0);
        assert_eq!(info.checkpoint_epoch, 0);
        assert_eq!(info.replayed, 12);
        assert!(!info.torn_tail);
        assert_eq!(recovered.epoch(), model.epoch());
        let a = crate::ModelSnapshot::build(&recovered, &crate::SnapshotSpec::default());
        let b = crate::ModelSnapshot::build(&model, &crate::SnapshotSpec::default());
        assert_eq!(a.digest(), b.digest());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_discarded_but_mid_log_corruption_is_fatal() {
        let (d, mut model) = fixture(100);
        let dir = tmp_dir("torn");
        let mut store = WalStore::create(&dir, 0, &model).unwrap();
        for o in 100..105 {
            model.advance(&row_at(&d, o)).unwrap();
            store.append(&WalRecord::Advance(row_at(&d, o))).unwrap();
        }
        drop(store);

        // Torn tail: chop bytes off the final record.
        let seg = segment_path(&dir, 0);
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 5]).unwrap();
        let (recovered, info) = recover(&dir).expect("torn tail tolerated");
        assert!(info.torn_tail);
        assert_eq!(info.replayed, 4);
        assert_eq!(recovered.epoch(), 4);

        // Mid-log corruption: flip a byte inside an earlier record.
        let mut broken = full.clone();
        broken[20] ^= 0x01;
        fs::write(&seg, &broken).unwrap();
        let err = recover(&dir).unwrap_err();
        assert!(matches!(err, RecoverError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_writes_a_checkpoint_and_recovery_uses_the_newest() {
        let (d, mut model) = fixture(100);
        let dir = tmp_dir("rotate");
        // Tiny budget: every append crosses it, so every record rotates.
        let mut store = WalStore::create(&dir, 1, &model).unwrap();
        let mut rotations = 0;
        for o in 100..106 {
            model.advance(&row_at(&d, o)).unwrap();
            store.append(&WalRecord::Advance(row_at(&d, o))).unwrap();
            if store.maybe_rotate(&model).unwrap() {
                rotations += 1;
            }
        }
        assert_eq!(rotations, 6);
        assert_eq!(store.seq(), 6);
        drop(store);
        let (recovered, info) = recover(&dir).expect("recover");
        assert_eq!(info.seq, 6);
        assert_eq!(info.checkpoint_epoch, 6);
        assert_eq!(info.replayed, 0);
        assert_eq!(recovered.epoch(), model.epoch());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_a_dir_that_already_holds_a_store() {
        let (_, model) = fixture(100);
        let dir = tmp_dir("refuse");
        let store = WalStore::create(&dir, 0, &model).unwrap();
        drop(store);
        let err = WalStore::create(&dir, 0, &model).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_on_an_empty_or_missing_dir_reports_no_checkpoint() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            recover(&dir).unwrap_err(),
            RecoverError::NoCheckpoint(_)
        ));
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            recover(&dir).unwrap_err(),
            RecoverError::NoCheckpoint(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
