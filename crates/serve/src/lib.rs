//! Read-mostly concurrent serving for association models.
//!
//! The paper's flagship use case — leading indicators that predict the
//! movement of other stocks (Section 5.1) — is a *query* workload: a
//! stream slides the observation window while clients continuously ask
//! "which attributes lead?", "what drives attribute `Y`?", and "given
//! today's indicator values, what will `Y` do?". This crate turns the
//! incremental mining engine into that system:
//!
//! - **One writer, many readers.** A single writer owns the live
//!   [`AssociationModel`], applies `advance` / `advance_batch` /
//!   `retire_oldest`, and publishes an immutable, epoch-tagged
//!   [`ModelSnapshot`] after every mutation ([`ModelServer`]).
//! - **Lock-free, allocation-free reads.** Snapshots are published
//!   through [`ArcCell`], a hand-rolled atomic `Arc` swap with
//!   hazard-pointer reclamation (see [`cell`] for the memory-ordering
//!   contract). A reader pins the current snapshot with two atomic
//!   loads and one atomic store — no locks, no heap allocation — and
//!   queries it through precomputed indexes ([`snapshot`]).
//! - **Publish-time precompute.** Each snapshot carries per-node
//!   incidence rankings, degree statistics, the cached dominator set,
//!   per-head best edges, pre-materialized association tables for the
//!   classifier's hot edge set, and pre-ranked mined rules — a query is
//!   pointer-chasing, not recounting, and classification is
//!   bit-identical to [`AssociationClassifier`] on the same window.
//! - **Sim / host split.** [`MarketFeed`] (the sim) generates a
//!   deterministic discretized market stream; [`ServeHost`] (the host)
//!   runs the writer on its own thread behind a bounded command queue
//!   with backpressure. [`throughput::measure_qps`] measures aggregate
//!   reader queries/sec during live slides — the number the `serve` CLI
//!   prints and `perf_summary` gates in CI.
//! - **Crash safety + fault containment.** A durable host persists a
//!   checksummed checkpoint of the windowed database + config and an
//!   append-only observation WAL ([`store`]); [`ServeHost::recover`]
//!   replays checkpoint + log tail into a model bit-identical to the
//!   pre-crash writer at its last durable record. Writer panics are
//!   contained per command ([`HostHealth`], [`WriterStats`]), a full
//!   queue's behavior is a policy ([`OverflowPolicy`]), and a
//!   deterministic fault-injection harness (`faults`, behind the
//!   `fault-injection` feature) drives the chaos suite.
//!
//! ```
//! use hypermine_core::{AssociationModel, ModelConfig};
//! use hypermine_data::Database;
//! use hypermine_serve::{ModelServer, SnapshotSpec};
//!
//! let x: Vec<u8> = (0..90).map(|i| (i % 3 + 1) as u8).collect();
//! let db = Database::from_columns(
//!     vec!["x".into(), "y".into()], 3, vec![x.clone(), x],
//! ).unwrap();
//! let model = AssociationModel::build(&db, &ModelConfig::default()).unwrap();
//!
//! let mut server = ModelServer::new(model, SnapshotSpec::default());
//! let mut reader = server.reader(); // movable to any thread
//! let snapshot = reader.load();     // lock-free pin
//! assert_eq!(snapshot.epoch(), 0);
//! assert!(snapshot.graph().num_edges() > 0);
//! ```
//!
//! [`AssociationModel`]: hypermine_core::AssociationModel
//! [`AssociationClassifier`]: hypermine_core::AssociationClassifier

pub mod cell;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod host;
pub mod sim;
pub mod snapshot;
pub mod store;
pub mod throughput;
pub mod writer;

pub use cell::{ArcCell, ReaderHandle, SnapshotGuard};
#[cfg(feature = "fault-injection")]
pub use faults::FaultPlan;
pub use host::{
    DurabilityOptions, HostHealth, HostOptions, OverflowPolicy, ServeHost, StreamCmd, WriterStats,
};
pub use sim::{FeedConfig, MarketFeed};
pub use snapshot::{ModelSnapshot, QueryScratch, SnapshotMemory, SnapshotSpec};
pub use store::{RecoverError, RecoveryInfo, WalRecord, WalStore};
pub use throughput::{measure_qps, scaling_runs, QpsRun};
pub use writer::ModelServer;
