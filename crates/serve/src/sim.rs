//! The sim side of the serve split: a deterministic market stream
//! feeding the writer.
//!
//! [`MarketFeed`] pre-generates a simulated market (same generator as
//! the paper experiments), fits discretization thresholds on the
//! initial window only — how a live system discretizes incoming days on
//! the training scale — and then serves the remaining days as stream
//! rows. [`MarketFeed::cycle_row`] wraps around for endless benchmark
//! runs, so the writer never starves while throughput is measured.

use hypermine_data::{Database, Value};
use hypermine_market::{discretize_market, Market, SimConfig, Universe};

/// Stream shape: how much market to simulate and how to discretize it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedConfig {
    /// Number of tickers (= attributes).
    pub tickers: usize,
    /// Initial window width in delta days; also the threshold-fitting
    /// range.
    pub window: usize,
    /// Discretization arity (paper C2 uses `k = 5`).
    pub k: Value,
    /// Total simulated trading days (delta days = `n_days - 1`).
    pub n_days: usize,
    /// Simulation seed; equal seeds reproduce identical feeds.
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            tickers: 40,
            window: 252,
            k: 5,
            n_days: 2 * 252,
            seed: 11,
        }
    }
}

/// A pre-generated, replayable stream of discretized market rows.
#[derive(Debug, Clone)]
pub struct MarketFeed {
    initial: Database,
    rows: Vec<Vec<Value>>,
    pos: usize,
}

impl MarketFeed {
    /// Simulates and discretizes a market per `cfg`.
    ///
    /// # Panics
    /// Panics when `cfg` yields no full initial window (too few days).
    pub fn new(cfg: &FeedConfig) -> MarketFeed {
        let market = Market::simulate(
            Universe::sp500(cfg.tickers),
            &SimConfig {
                n_days: cfg.n_days,
                seed: cfg.seed,
                ..SimConfig::default()
            },
        );
        let disc = discretize_market(&market, cfg.k, Some(0..cfg.window));
        let stream = disc.discretize_more(&market, 0..usize::MAX);
        assert!(
            stream.num_obs() > cfg.window,
            "feed needs at least one day beyond the initial window"
        );
        let initial = stream.slice_obs(0..cfg.window);
        let rows = (cfg.window..stream.num_obs())
            .map(|o| stream.attrs().map(|a| stream.value(a, o)).collect())
            .collect();
        MarketFeed {
            initial,
            rows,
            pos: 0,
        }
    }

    /// The initial window to build the served model from.
    pub fn initial(&self) -> &Database {
        &self.initial
    }

    /// Number of stream rows beyond the initial window.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the feed has no stream rows (never, per the `new`
    /// assertion, but clippy rightly wants `len` paired).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The next stream row, or `None` once exhausted.
    pub fn next_row(&mut self) -> Option<&[Value]> {
        let row = self.rows.get(self.pos)?;
        self.pos += 1;
        Some(row)
    }

    /// The next stream row, wrapping around at the end — an endless
    /// stationary stream for throughput runs.
    pub fn cycle_row(&mut self) -> &[Value] {
        if self.pos >= self.rows.len() {
            self.pos = 0;
        }
        let row = &self.rows[self.pos];
        self.pos += 1;
        row
    }

    /// Rewinds the feed to its first stream row.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_is_deterministic_and_cycles() {
        let cfg = FeedConfig {
            tickers: 12, // sp500 universes clamp to >= 12 tickers
            window: 60,
            n_days: 100,
            ..FeedConfig::default()
        };
        let mut f1 = MarketFeed::new(&cfg);
        let mut f2 = MarketFeed::new(&cfg);
        assert_eq!(f1.initial(), f2.initial());
        assert_eq!(f1.initial().num_obs(), 60);
        assert_eq!(f1.initial().num_attrs(), 12);
        assert_eq!(f1.len(), 99 - 60); // n_days - 1 delta days total
        let first = f1.cycle_row().to_vec();
        assert_eq!(f2.next_row().unwrap(), &first[..]);
        for _ in 1..f1.len() {
            f1.cycle_row();
        }
        assert_eq!(f1.cycle_row(), &first[..], "wraps to the first row");
        assert!(!f1.is_empty());
        f1.rewind();
        assert_eq!(f1.next_row().unwrap(), &first[..]);
    }

    #[test]
    fn rows_are_valid_stream_input() {
        let cfg = FeedConfig {
            tickers: 12,
            window: 40,
            n_days: 80,
            k: 3,
            ..FeedConfig::default()
        };
        let mut feed = MarketFeed::new(&cfg);
        while let Some(row) = feed.next_row() {
            assert_eq!(row.len(), 12);
            assert!(row.iter().all(|&v| (1..=3).contains(&v)));
        }
    }
}
