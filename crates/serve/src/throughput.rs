//! Live-slide throughput measurement: reader queries/sec while the
//! writer continuously advances the window.
//!
//! Shared by the `serve` CLI and the bench crate's `perf_summary`, so
//! the number CI gates on is the number the CLI prints. One *query
//! round* is three answered queries against one pinned snapshot — a
//! dominator-membership lookup, a top-γ ranked-edge lookup, and a
//! classification (or best-edge fallback when the probed attribute is
//! itself a leading indicator) — the mixed read workload the paper's
//! use case implies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hypermine_core::{AssociationModel, ModelConfig};
use hypermine_data::AttrId;

use crate::host::ServeHost;
use crate::sim::{FeedConfig, MarketFeed};
use crate::snapshot::SnapshotSpec;
use crate::writer::ModelServer;

/// One throughput run at a fixed reader count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpsRun {
    /// Concurrent reader threads.
    pub readers: usize,
    /// Total queries answered across all readers (3 per round).
    pub queries: u64,
    /// Wall-clock time the readers ran.
    pub elapsed: Duration,
    /// Aggregate queries per second.
    pub qps: f64,
    /// Snapshots the writer published during the run.
    pub published: u64,
    /// Highest epoch any reader observed.
    pub max_epoch_seen: u64,
}

/// Measures aggregate reader throughput at `readers` threads for
/// roughly `duration`, with the writer sliding the window as fast as
/// the queue's backpressure allows. Deterministic feed, wall-clock
/// measurement.
pub fn measure_qps(
    feed: &MarketFeed,
    model_cfg: &ModelConfig,
    spec: &SnapshotSpec,
    readers: usize,
    duration: Duration,
) -> QpsRun {
    assert!(readers >= 1, "at least one reader");
    let model = AssociationModel::build(feed.initial(), model_cfg)
        .expect("feed configs use valid gammas");
    let n = feed.initial().num_attrs();
    let host = ServeHost::spawn(ModelServer::new(model, spec.clone()), 4);
    let stop = AtomicBool::new(false);

    let mut queries = 0u64;
    let mut max_epoch_seen = 0u64;
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        // The feed half: keep the writer sliding until readers finish.
        s.spawn(|| {
            let mut feed = feed.clone();
            while !stop.load(Ordering::Relaxed) {
                host.advance(feed.cycle_row().to_vec());
            }
        });

        let started = Instant::now();
        let workers: Vec<_> = (0..readers)
            .map(|r| {
                let mut handle = host.reader();
                let mut rows = feed.clone();
                // Stagger starting rows so readers do not probe in
                // lockstep.
                for _ in 0..(r * 7) % rows.len().max(1) {
                    rows.cycle_row();
                }
                let stop = &stop;
                s.spawn(move || {
                    let mut scratch = handle.load().scratch();
                    let mut row = rows.cycle_row().to_vec();
                    let mut count = 0u64;
                    let mut last_epoch = 0u64;
                    let mut probe = r;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = handle.load();
                        let epoch = snap.epoch();
                        assert!(epoch >= last_epoch, "epochs regress");
                        last_epoch = epoch;
                        let a = AttrId::new((probe % n) as u32);
                        probe = probe.wrapping_add(1);
                        // 1: dominator membership; 2: top-γ ranking.
                        let leading = snap.is_leading(a);
                        let _strongest = snap.ranked_in_edges(a).first().copied();
                        // 3: classification (or the leading indicator's
                        // own strongest driver when it can't be a
                        // target).
                        if leading {
                            let _ = snap.best_in_edge(a);
                        } else {
                            let _ = snap.predict_or_majority(&mut scratch, &row, a);
                        }
                        count += 3;
                        if probe % 64 == 0 {
                            drop(snap);
                            row.copy_from_slice(rows.cycle_row());
                        }
                    }
                    (count, last_epoch)
                })
            })
            .collect();

        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            let (count, epoch) = w.join().expect("reader threads don't panic");
            queries += count;
            max_epoch_seen = max_epoch_seen.max(epoch);
        }
        elapsed = started.elapsed();
    });
    let stats = host.shutdown();
    QpsRun {
        readers,
        queries,
        elapsed,
        qps: queries as f64 / elapsed.as_secs_f64(),
        published: stats.published,
        max_epoch_seen,
    }
}

/// [`measure_qps`] at each reader count in `readers`, sharing one feed.
pub fn scaling_runs(
    cfg: &FeedConfig,
    model_cfg: &ModelConfig,
    spec: &SnapshotSpec,
    readers: &[usize],
    duration: Duration,
) -> Vec<QpsRun> {
    let feed = MarketFeed::new(cfg);
    readers
        .iter()
        .map(|&r| measure_qps(&feed, model_cfg, spec, r, duration))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_answers_queries_and_observes_slides() {
        let cfg = FeedConfig {
            tickers: 8,
            window: 60,
            n_days: 100,
            ..FeedConfig::default()
        };
        let feed = MarketFeed::new(&cfg);
        let mut run = measure_qps(
            &feed,
            &ModelConfig::default(),
            &SnapshotSpec::default(),
            2,
            Duration::from_millis(150),
        );
        // On a heavily loaded single-core machine the writer may not get
        // a slice in a short run; retry with longer windows before
        // judging.
        for _ in 0..3 {
            if run.max_epoch_seen >= 1 {
                break;
            }
            run = measure_qps(
                &feed,
                &ModelConfig::default(),
                &SnapshotSpec::default(),
                2,
                Duration::from_millis(400),
            );
        }
        assert_eq!(run.readers, 2);
        assert!(run.queries > 0 && run.queries % 3 == 0);
        assert!(run.qps > 0.0);
        assert!(run.published >= 1, "the writer slid during the run");
        assert!(run.max_epoch_seen >= 1, "readers saw a slide land");
    }
}
