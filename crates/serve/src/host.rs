//! The host side of the serve split: a dedicated writer thread draining
//! a bounded command queue while readers query published snapshots.
//!
//! [`ServeHost::spawn`] moves a [`ModelServer`] onto its own thread and
//! returns a handle that (a) enqueues stream commands with backpressure
//! — a bounded [`std::sync::mpsc::sync_channel`], so a slow writer
//! throttles the feed instead of buffering unboundedly — and (b) hands
//! out lock-free [`ReaderHandle`]s that keep working for as long as any
//! handle to the snapshot cell lives, even after shutdown.

use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use hypermine_data::Value;

use crate::cell::{ArcCell, ReaderHandle};
use crate::snapshot::ModelSnapshot;
use crate::writer::ModelServer;

/// One unit of stream input for the writer thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamCmd {
    /// Slide the window one observation forward.
    Advance(Vec<Value>),
    /// Slide the window several steps in one batch (one publish).
    AdvanceBatch(Vec<Vec<Value>>),
    /// Contract the window from the old end (calendar gap).
    Retire,
    /// Drain nothing further and exit the writer thread.
    Shutdown,
}

/// What the writer thread did before exiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriterStats {
    /// Snapshots published (successful mutations).
    pub published: u64,
    /// Commands rejected by the model (e.g. malformed rows). The
    /// previous snapshot stays served across a rejection.
    pub rejected: u64,
    /// The last published epoch.
    pub last_epoch: u64,
}

/// A running serve instance: writer thread + snapshot cell.
#[derive(Debug)]
pub struct ServeHost {
    cell: Arc<ArcCell<ModelSnapshot>>,
    tx: Option<SyncSender<StreamCmd>>,
    writer: Option<JoinHandle<WriterStats>>,
}

impl ServeHost {
    /// Spawns the writer thread around `server` with a command queue of
    /// depth `queue` (senders block when it is full — that is the
    /// feed's backpressure).
    pub fn spawn(server: ModelServer, queue: usize) -> ServeHost {
        let cell = Arc::clone(server.cell());
        let (tx, rx) = sync_channel::<StreamCmd>(queue.max(1));
        let writer = std::thread::Builder::new()
            .name("hypermine-serve-writer".into())
            .spawn(move || {
                let mut server = server;
                let mut stats = WriterStats {
                    last_epoch: server.model().epoch(),
                    ..WriterStats::default()
                };
                while let Ok(cmd) = rx.recv() {
                    let outcome = match cmd {
                        StreamCmd::Advance(row) => server.advance(&row),
                        StreamCmd::AdvanceBatch(rows) => server.advance_batch(&rows),
                        StreamCmd::Retire => server.retire_oldest(),
                        StreamCmd::Shutdown => break,
                    };
                    match outcome {
                        Ok(epoch) => {
                            stats.published += 1;
                            stats.last_epoch = epoch;
                        }
                        Err(_) => stats.rejected += 1,
                    }
                }
                stats
            })
            .expect("spawning the writer thread");
        ServeHost {
            cell,
            tx: Some(tx),
            writer: Some(writer),
        }
    }

    /// A lock-free reader of the published snapshot; independent of the
    /// host's lifetime (the cell is ref-counted).
    pub fn reader(&self) -> ReaderHandle<ModelSnapshot> {
        self.cell.reader()
    }

    /// The snapshot cell, e.g. to create readers on other threads.
    pub fn cell(&self) -> &Arc<ArcCell<ModelSnapshot>> {
        &self.cell
    }

    /// Enqueues a command, blocking while the queue is full. Returns
    /// `false` if the writer already exited.
    pub fn send(&self, cmd: StreamCmd) -> bool {
        self.tx
            .as_ref()
            .map(|tx| tx.send(cmd).is_ok())
            .unwrap_or(false)
    }

    /// Enqueues a command without blocking. Returns the command back
    /// when the queue is full (`Err`), so feeds can drop or retry.
    pub fn try_send(&self, cmd: StreamCmd) -> Result<(), StreamCmd> {
        match self.tx.as_ref() {
            None => Err(cmd),
            Some(tx) => match tx.try_send(cmd) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => Err(c),
            },
        }
    }

    /// Convenience: [`StreamCmd::Advance`] with backpressure.
    pub fn advance(&self, row: Vec<Value>) -> bool {
        self.send(StreamCmd::Advance(row))
    }

    /// Drains the queue, stops the writer, and returns its stats.
    pub fn shutdown(mut self) -> WriterStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> WriterStats {
        if let Some(tx) = self.tx.take() {
            // A full queue still accepts Shutdown eventually: the writer
            // is draining it. Ignore a disconnected writer (panicked).
            let _ = tx.send(StreamCmd::Shutdown);
        }
        match self.writer.take() {
            Some(handle) => handle.join().expect("writer thread panicked"),
            None => WriterStats::default(),
        }
    }
}

impl Drop for ServeHost {
    fn drop(&mut self) {
        if self.writer.is_some() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSpec;
    use hypermine_core::{AssociationModel, ModelConfig};
    use hypermine_data::Database;

    fn server() -> (Database, ModelServer) {
        let x: Vec<Value> = (0..120).map(|i| (i % 3 + 1) as Value).collect();
        let z: Vec<Value> = (0..120).map(|i| ((i / 7) % 3 + 1) as Value).collect();
        let d = Database::from_columns(
            vec!["x".into(), "y".into(), "z".into()],
            3,
            vec![x.clone(), x, z],
        )
        .unwrap();
        let model = AssociationModel::build(&d.slice_obs(0..100), &ModelConfig::default()).unwrap();
        (d, ModelServer::new(model, SnapshotSpec::default()))
    }

    #[test]
    fn host_streams_commands_through_the_writer() {
        let (d, server) = server();
        let host = ServeHost::spawn(server, 8);
        let mut reader = host.reader();
        for o in 100..110 {
            assert!(host.advance(d.attrs().map(|a| d.value(a, o)).collect()));
        }
        assert!(host.send(StreamCmd::Retire));
        // Enqueuing succeeds; the *writer* rejects the malformed row.
        assert!(host.send(StreamCmd::Advance(vec![1])));
        let stats = host.shutdown();
        assert_eq!(stats.published, 11);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.last_epoch, 11);
        // The cell outlives the host's writer.
        assert_eq!(reader.load().epoch(), 11);
    }

    #[test]
    fn try_send_reports_a_full_queue_instead_of_blocking() {
        let (d, server) = server();
        let host = ServeHost::spawn(server, 1);
        let row: Vec<Value> = d.attrs().map(|a| d.value(a, 100)).collect();
        let mut accepted = 0u64;
        let mut refused = 0u64;
        for _ in 0..64 {
            match host.try_send(StreamCmd::Advance(row.clone())) {
                Ok(()) => accepted += 1,
                Err(StreamCmd::Advance(_)) => refused += 1,
                Err(_) => unreachable!("commands come back unchanged"),
            }
        }
        assert!(accepted >= 1);
        let stats = host.shutdown();
        assert_eq!(stats.published, accepted);
        assert!(refused + accepted == 64);
    }

    #[test]
    fn drop_without_shutdown_joins_the_writer() {
        let (d, server) = server();
        {
            let host = ServeHost::spawn(server, 4);
            host.advance(d.attrs().map(|a| d.value(a, 100)).collect());
        } // Drop joins; no leaked thread, no panic.
    }
}
