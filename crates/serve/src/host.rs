//! The host side of the serve split: a dedicated writer thread draining
//! a bounded command queue while readers query published snapshots.
//!
//! [`ServeHost::spawn`] moves a [`ModelServer`] onto its own thread and
//! returns a handle that (a) enqueues stream commands with backpressure
//! — a bounded [`std::sync::mpsc::sync_channel`], so a slow writer
//! throttles the feed instead of buffering unboundedly — and (b) hands
//! out lock-free [`ReaderHandle`]s that keep working for as long as any
//! handle to the snapshot cell lives, even after shutdown.
//!
//! Three robustness layers ride on that split:
//!
//! - **Fault containment.** Command processing runs under
//!   [`std::panic::catch_unwind`]: a poison command is quarantined into
//!   [`WriterStats`] (`panics` + `last_error`) while the last good
//!   snapshot keeps serving, and [`ServeHost::health`] — readable from
//!   any thread — reports [`HostHealth::Degraded`]. A panic that escapes
//!   containment kills the writer thread; the non-panicking join in
//!   `shutdown`/`Drop` surfaces that as [`HostHealth::Failed`] instead
//!   of re-panicking (which, during unwinding, would abort the process).
//! - **Backpressure policy.** [`OverflowPolicy`] picks what a full queue
//!   does to the feed: block (default), drop the newest command, or
//!   coalesce advances into one batch; [`ServeHost::send_timeout`] bounds
//!   the wait explicitly.
//! - **Durability.** With [`DurabilityOptions`], every accepted mutation
//!   is appended to a [`crate::store`] WAL after it applies (a commit
//!   log: rejected commands never replay), segments rotate through fresh
//!   checkpoints, and [`ServeHost::recover`] rebuilds a bit-identical
//!   host from the newest checkpoint + log tail after a crash.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hypermine_data::Value;

use crate::cell::{ArcCell, ReaderHandle};
use crate::snapshot::{ModelSnapshot, SnapshotSpec};
use crate::store::{self, RecoverError, RecoveryInfo, WalRecord, WalStore};
use crate::writer::ModelServer;

#[cfg(feature = "fault-injection")]
use crate::faults::FaultPlan;

/// One unit of stream input for the writer thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamCmd {
    /// Slide the window one observation forward.
    Advance(Vec<Value>),
    /// Slide the window several steps in one batch (one publish).
    AdvanceBatch(Vec<Vec<Value>>),
    /// Contract the window from the old end (calendar gap).
    Retire,
    /// Drain nothing further and exit the writer thread.
    Shutdown,
}

impl StreamCmd {
    /// Compact description for `WriterStats::last_error`.
    fn describe(&self) -> String {
        match self {
            StreamCmd::Advance(row) => format!("Advance({} values)", row.len()),
            StreamCmd::AdvanceBatch(rows) => format!("AdvanceBatch({} rows)", rows.len()),
            StreamCmd::Retire => "Retire".into(),
            StreamCmd::Shutdown => "Shutdown".into(),
        }
    }

    /// The durable form of an *accepted* command (`Shutdown` is control
    /// flow, not state).
    fn into_wal_record(self) -> Option<WalRecord> {
        match self {
            StreamCmd::Advance(row) => Some(WalRecord::Advance(row)),
            StreamCmd::AdvanceBatch(rows) => Some(WalRecord::AdvanceBatch(rows)),
            StreamCmd::Retire => Some(WalRecord::Retire),
            StreamCmd::Shutdown => None,
        }
    }
}

/// Liveness of a host's writer thread, readable from any thread at any
/// time (one atomic load).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostHealth {
    /// No contained panics, durability (if enabled) intact.
    Healthy,
    /// Still serving, but something was lost: a command panicked inside
    /// the containment, or a WAL append failed and durability froze at
    /// the last durable record.
    Degraded,
    /// The writer thread is gone (a panic escaped containment); the last
    /// published snapshot keeps serving, but no further commands apply.
    Failed,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_FAILED: u8 = 2;

fn decode_health(raw: u8) -> HostHealth {
    match raw {
        HEALTH_DEGRADED => HostHealth::Degraded,
        HEALTH_FAILED => HostHealth::Failed,
        _ => HostHealth::Healthy,
    }
}

/// What a full command queue does to the feed (chosen at spawn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// [`ServeHost::send`] blocks until the writer drains a slot — the
    /// queue is the feed's backpressure.
    #[default]
    Block,
    /// [`ServeHost::send`] drops the command it was given (returning
    /// `false` and counting `WriterStats::dropped`) instead of blocking —
    /// for feeds where staleness beats latency.
    DropNewest,
    /// Overflowing [`StreamCmd::Advance`] rows park in a host-side buffer
    /// (counting `WriterStats::coalesced`) and enter the queue as one
    /// [`StreamCmd::AdvanceBatch`] when a slot frees — same observations,
    /// fewer publishes. Non-advance commands flush the buffer first
    /// (blocking) so ordering is preserved; shutdown flushes the rest.
    CoalesceBatch,
}

/// Where and how a durable host persists its state (see [`crate::store`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Directory for checkpoints + WAL segments.
    pub dir: PathBuf,
    /// Segment rotation budget in bytes; `0` means
    /// [`store::DEFAULT_SEGMENT_BYTES`].
    pub segment_bytes: u64,
}

impl DurabilityOptions {
    /// Durability under `dir` with the default segment budget.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            dir: dir.into(),
            segment_bytes: 0,
        }
    }
}

/// Everything [`ServeHost::spawn_with`] / [`ServeHost::recover`] accept
/// beyond the model itself. `..Default::default()` keeps call sites
/// stable as options grow.
#[derive(Debug, Clone, Default)]
pub struct HostOptions {
    /// Command-queue depth (0 is clamped to 1).
    pub queue: usize,
    /// Full-queue behavior.
    pub overflow: OverflowPolicy,
    /// `Some` makes the host durable.
    pub durability: Option<DurabilityOptions>,
    /// Deterministic fault schedule (test harness only).
    #[cfg(feature = "fault-injection")]
    pub faults: Option<FaultPlan>,
}

impl HostOptions {
    /// Just a queue depth, everything else default — the options form of
    /// [`ServeHost::spawn`]'s second argument.
    pub fn queue(queue: usize) -> HostOptions {
        HostOptions {
            queue,
            ..HostOptions::default()
        }
    }
}

/// What the writer thread did before exiting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriterStats {
    /// Snapshots published (successful mutations).
    pub published: u64,
    /// Commands rejected by the model (e.g. malformed rows). The
    /// previous snapshot stays served across a rejection.
    pub rejected: u64,
    /// The last published epoch.
    pub last_epoch: u64,
    /// Commands whose processing panicked inside the containment; the
    /// poison command is quarantined (described in `last_error`) and the
    /// previous snapshot stays served.
    pub panics: u64,
    /// WAL records appended durably (0 for a non-durable host).
    pub wal_records: u64,
    /// Commands dropped by [`OverflowPolicy::DropNewest`].
    pub dropped: u64,
    /// Advance rows deferred into a batch by
    /// [`OverflowPolicy::CoalesceBatch`].
    pub coalesced: u64,
    /// The most recent rejection, panic, or WAL failure, with the
    /// offending command described.
    pub last_error: Option<String>,
}

/// A running serve instance: writer thread + snapshot cell.
#[derive(Debug)]
pub struct ServeHost {
    cell: Arc<ArcCell<ModelSnapshot>>,
    tx: Option<SyncSender<StreamCmd>>,
    writer: Option<JoinHandle<WriterStats>>,
    health: Arc<AtomicU8>,
    overflow: OverflowPolicy,
    dropped: AtomicU64,
    coalesced: AtomicU64,
    pending: Mutex<Vec<Vec<Value>>>,
}

/// Flips health to `Failed` if the writer thread unwinds past the
/// containment, so readers learn about the death without joining.
struct FailGuard {
    health: Arc<AtomicU8>,
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.health.store(HEALTH_FAILED, Ordering::SeqCst);
        }
    }
}

impl ServeHost {
    /// Spawns the writer thread around `server` with a command queue of
    /// depth `queue` (senders block when it is full — that is the
    /// feed's backpressure). Non-durable; see [`ServeHost::spawn_with`].
    pub fn spawn(server: ModelServer, queue: usize) -> ServeHost {
        Self::spawn_with(server, HostOptions::queue(queue))
            .expect("spawning a non-durable host performs no i/o")
    }

    /// Spawns with explicit [`HostOptions`]. Fails only when durability
    /// is requested and creating the store does (i/o).
    pub fn spawn_with(server: ModelServer, options: HostOptions) -> std::io::Result<ServeHost> {
        let store = match &options.durability {
            None => None,
            Some(d) => Some(WalStore::create(&d.dir, d.segment_bytes, server.model())?),
        };
        Ok(Self::spawn_inner(server, options, store))
    }

    /// Rebuilds a crashed durable host from `dir`: newest checkpoint +
    /// WAL tail replay (see [`store::recover`] for the tolerance
    /// contract), then continues durably in the same directory — a fresh
    /// checkpoint at the next segment sequence, pre-crash files
    /// untouched. The recovered model is bit-identical to the pre-crash
    /// writer at its last durable record; readers created from the
    /// returned host resume at the recovered epoch.
    ///
    /// `options.durability` supplies the segment budget (its `dir`, if
    /// set, must agree with `dir`); when `None`, the recovered host is
    /// durable under `dir` with the default budget.
    pub fn recover(
        dir: impl AsRef<Path>,
        spec: SnapshotSpec,
        options: HostOptions,
    ) -> Result<(ServeHost, RecoveryInfo), RecoverError> {
        let dir = dir.as_ref();
        let mut options = options;
        let durability = options
            .durability
            .take()
            .unwrap_or_else(|| DurabilityOptions::new(dir));
        if durability.dir != dir {
            return Err(RecoverError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "recover dir {} disagrees with durability dir {}",
                    dir.display(),
                    durability.dir.display()
                ),
            )));
        }
        let (model, info) = store::recover(dir)?;
        let store = WalStore::continue_from(dir, durability.segment_bytes, &model, info.seq + 1)?;
        let server = ModelServer::new(model, spec);
        Ok((Self::spawn_inner(server, options, Some(store)), info))
    }

    fn spawn_inner(
        server: ModelServer,
        options: HostOptions,
        store: Option<WalStore>,
    ) -> ServeHost {
        let cell = Arc::clone(server.cell());
        let health = Arc::new(AtomicU8::new(HEALTH_HEALTHY));
        let (tx, rx) = sync_channel::<StreamCmd>(options.queue.max(1));
        #[cfg(feature = "fault-injection")]
        let faults = options.faults.clone();
        #[cfg(feature = "fault-injection")]
        let store = match (store, &faults) {
            (Some(s), Some(plan)) => Some(s.with_faults(plan.clone())),
            (s, _) => s,
        };
        let writer_health = Arc::clone(&health);
        let writer = std::thread::Builder::new()
            .name("hypermine-serve-writer".into())
            .spawn(move || {
                let _fail_guard = FailGuard {
                    health: Arc::clone(&writer_health),
                };
                let mut server = server;
                let mut store = store;
                let mut stats = WriterStats {
                    last_epoch: server.model().epoch(),
                    ..WriterStats::default()
                };
                #[cfg(feature = "fault-injection")]
                let mut command_idx: u64 = 0;
                while let Ok(cmd) = rx.recv() {
                    if matches!(cmd, StreamCmd::Shutdown) {
                        break;
                    }
                    #[cfg(feature = "fault-injection")]
                    if let Some(plan) = &faults {
                        plan.wait_if_stalled();
                        // Outside the containment below: this one is
                        // meant to kill the thread.
                        plan.check_lethal_panic(command_idx);
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(feature = "fault-injection")]
                        if let Some(plan) = &faults {
                            plan.check_contained_panic(command_idx);
                        }
                        match &cmd {
                            StreamCmd::Advance(row) => server.advance(row),
                            StreamCmd::AdvanceBatch(rows) => server.advance_batch(rows),
                            StreamCmd::Retire => server.retire_oldest(),
                            StreamCmd::Shutdown => unreachable!("handled above"),
                        }
                    }));
                    #[cfg(feature = "fault-injection")]
                    {
                        command_idx += 1;
                    }
                    match outcome {
                        Ok(Ok(epoch)) => {
                            stats.published += 1;
                            stats.last_epoch = epoch;
                            if let Some(wal) = store.as_mut() {
                                let record = cmd
                                    .into_wal_record()
                                    .expect("only loggable commands reach here");
                                let appended = wal
                                    .append(&record)
                                    .and_then(|()| wal.maybe_rotate(server.model()).map(|_| ()));
                                match appended {
                                    Ok(()) => stats.wal_records += 1,
                                    Err(e) => {
                                        // A hole in the log would replay
                                        // out of order, so durability
                                        // freezes at the last durable
                                        // record; serving continues.
                                        stats.last_error =
                                            Some(format!("wal append failed: {e}"));
                                        writer_health
                                            .fetch_max(HEALTH_DEGRADED, Ordering::SeqCst);
                                        store = None;
                                    }
                                }
                            }
                        }
                        Ok(Err(e)) => {
                            stats.rejected += 1;
                            stats.last_error = Some(format!("{} rejected: {e}", cmd.describe()));
                        }
                        Err(payload) => {
                            stats.panics += 1;
                            stats.last_error = Some(format!(
                                "{} panicked: {}",
                                cmd.describe(),
                                // `&*`: coerce the *contents* of the box,
                                // not the `Box` itself, to `dyn Any` — a
                                // bare `&payload` unsizes the box and the
                                // downcasts always miss.
                                panic_message(&*payload)
                            ));
                            writer_health.fetch_max(HEALTH_DEGRADED, Ordering::SeqCst);
                        }
                    }
                }
                if let Some(wal) = store.as_mut() {
                    let _ = wal.sync();
                }
                stats
            })
            .expect("spawning the writer thread");
        ServeHost {
            cell,
            tx: Some(tx),
            writer: Some(writer),
            health,
            overflow: options.overflow,
            dropped: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// A lock-free reader of the published snapshot; independent of the
    /// host's lifetime (the cell is ref-counted).
    pub fn reader(&self) -> ReaderHandle<ModelSnapshot> {
        self.cell.reader()
    }

    /// The snapshot cell, e.g. to create readers on other threads.
    pub fn cell(&self) -> &Arc<ArcCell<ModelSnapshot>> {
        &self.cell
    }

    /// Current writer liveness — one atomic load, callable from any
    /// thread, meaningful before *and* after shutdown.
    pub fn health(&self) -> HostHealth {
        decode_health(self.health.load(Ordering::SeqCst))
    }

    /// Enqueues a command under the host's [`OverflowPolicy`]. Returns
    /// `false` if the writer already exited, or — under
    /// [`OverflowPolicy::DropNewest`] — if the command was dropped.
    pub fn send(&self, cmd: StreamCmd) -> bool {
        match self.overflow {
            OverflowPolicy::Block => self.send_blocking(cmd),
            OverflowPolicy::DropNewest => match self.try_send_raw(cmd) {
                Ok(()) => true,
                Err(TrySendError::Disconnected(_)) => false,
                Err(TrySendError::Full(_)) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
            OverflowPolicy::CoalesceBatch => self.send_coalescing(cmd),
        }
    }

    fn send_blocking(&self, cmd: StreamCmd) -> bool {
        self.tx
            .as_ref()
            .map(|tx| tx.send(cmd).is_ok())
            .unwrap_or(false)
    }

    fn try_send_raw(&self, cmd: StreamCmd) -> Result<(), TrySendError<StreamCmd>> {
        match self.tx.as_ref() {
            None => Err(TrySendError::Disconnected(cmd)),
            Some(tx) => tx.try_send(cmd),
        }
    }

    fn send_coalescing(&self, cmd: StreamCmd) -> bool {
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        match cmd {
            StreamCmd::Advance(row) => {
                if pending.is_empty() {
                    match self.try_send_raw(StreamCmd::Advance(row)) {
                        Ok(()) => true,
                        Err(TrySendError::Disconnected(_)) => false,
                        Err(TrySendError::Full(StreamCmd::Advance(row))) => {
                            pending.push(row);
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            true
                        }
                        Err(TrySendError::Full(_)) => unreachable!("commands come back unchanged"),
                    }
                } else {
                    pending.push(row);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    let batch = std::mem::take(&mut *pending);
                    match self.try_send_raw(StreamCmd::AdvanceBatch(batch)) {
                        Ok(()) => true,
                        Err(TrySendError::Full(StreamCmd::AdvanceBatch(batch))) => {
                            // Still no slot: the rows stay parked for the
                            // next send (or the shutdown flush).
                            *pending = batch;
                            true
                        }
                        Err(TrySendError::Disconnected(_)) => false,
                        Err(TrySendError::Full(_)) => unreachable!("commands come back unchanged"),
                    }
                }
            }
            other => {
                // Ordering: buffered advances precede any later command.
                if !pending.is_empty() {
                    let batch = std::mem::take(&mut *pending);
                    drop(pending);
                    if !self.send_blocking(StreamCmd::AdvanceBatch(batch)) {
                        return false;
                    }
                } else {
                    drop(pending);
                }
                self.send_blocking(other)
            }
        }
    }

    /// Enqueues a command without blocking. Returns the command back
    /// when the queue is full (`Err`), so feeds can drop or retry.
    pub fn try_send(&self, cmd: StreamCmd) -> Result<(), StreamCmd> {
        match self.try_send_raw(cmd) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => Err(c),
        }
    }

    /// Enqueues with a bounded wait: retries a full queue until
    /// `timeout` elapses, then hands the command back. Ignores the
    /// overflow policy — the timeout *is* the caller's policy here.
    pub fn send_timeout(&self, cmd: StreamCmd, timeout: Duration) -> Result<(), StreamCmd> {
        let deadline = Instant::now() + timeout;
        let mut cmd = cmd;
        loop {
            match self.try_send_raw(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(c)) => return Err(c),
                Err(TrySendError::Full(c)) => {
                    if Instant::now() >= deadline {
                        return Err(c);
                    }
                    cmd = c;
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    /// Convenience: [`StreamCmd::Advance`] under the overflow policy.
    pub fn advance(&self, row: Vec<Value>) -> bool {
        self.send(StreamCmd::Advance(row))
    }

    /// Drains the queue, stops the writer, and returns its stats. Never
    /// panics: a writer that died earlier comes back as
    /// [`HostHealth::Failed`] with partial stats (`last_error` set).
    pub fn shutdown(mut self) -> WriterStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> WriterStats {
        if let Some(tx) = self.tx.take() {
            // Flush rows still parked by CoalesceBatch — with a bounded
            // retry, not a blocking send: a writer that never drains
            // (dead, or deliberately stalled by a fault plan) must not
            // hang shutdown forever.
            let parked = std::mem::take(&mut *self.pending.lock().expect("pending buffer poisoned"));
            if !parked.is_empty() {
                let mut cmd = StreamCmd::AdvanceBatch(parked);
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    match tx.try_send(cmd) {
                        Ok(()) | Err(TrySendError::Disconnected(_)) => break,
                        Err(TrySendError::Full(c)) => {
                            if Instant::now() >= deadline {
                                break;
                            }
                            cmd = c;
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                }
            }
            // Dropping the sender disconnects the channel: the writer
            // drains whatever is buffered, then `recv` errors and the
            // loop exits. (A blocking Shutdown send here could wedge on
            // a full queue whose writer died or is parked — the exact
            // situation shutdown must survive.)
            drop(tx);
        }
        let mut stats = match self.writer.take() {
            Some(handle) => match handle.join() {
                Ok(stats) => stats,
                Err(payload) => {
                    // The writer died mid-command; its counters died with
                    // it. Surface the death, don't re-panic (a Drop-time
                    // re-panic during unwinding aborts the process).
                    self.health.store(HEALTH_FAILED, Ordering::SeqCst);
                    WriterStats {
                        panics: 1,
                        last_error: Some(format!(
                            "writer thread died: {}",
                            panic_message(&*payload)
                        )),
                        ..WriterStats::default()
                    }
                }
            },
            None => WriterStats::default(),
        };
        stats.dropped = self.dropped.load(Ordering::Relaxed);
        stats.coalesced = self.coalesced.load(Ordering::Relaxed);
        stats
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

impl Drop for ServeHost {
    fn drop(&mut self) {
        if self.writer.is_some() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSpec;
    use hypermine_core::{AssociationModel, ModelConfig};
    use hypermine_data::Database;

    fn server() -> (Database, ModelServer) {
        let x: Vec<Value> = (0..120).map(|i| (i % 3 + 1) as Value).collect();
        let z: Vec<Value> = (0..120).map(|i| ((i / 7) % 3 + 1) as Value).collect();
        let d = Database::from_columns(
            vec!["x".into(), "y".into(), "z".into()],
            3,
            vec![x.clone(), x, z],
        )
        .unwrap();
        let model = AssociationModel::build(&d.slice_obs(0..100), &ModelConfig::default()).unwrap();
        (d, ModelServer::new(model, SnapshotSpec::default()))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hypermine-host-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn host_streams_commands_through_the_writer() {
        let (d, server) = server();
        let host = ServeHost::spawn(server, 8);
        let mut reader = host.reader();
        for o in 100..110 {
            assert!(host.advance(d.attrs().map(|a| d.value(a, o)).collect()));
        }
        assert!(host.send(StreamCmd::Retire));
        // Enqueuing succeeds; the *writer* rejects the malformed row.
        assert!(host.send(StreamCmd::Advance(vec![1])));
        assert_eq!(host.health(), HostHealth::Healthy);
        let stats = host.shutdown();
        assert_eq!(stats.published, 11);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.last_epoch, 11);
        assert_eq!(stats.panics, 0);
        let err = stats.last_error.expect("the rejection is recorded");
        assert!(err.contains("Advance(1 values) rejected"), "{err}");
        // The cell outlives the host's writer.
        assert_eq!(reader.load().epoch(), 11);
    }

    #[test]
    fn try_send_reports_a_full_queue_instead_of_blocking() {
        let (d, server) = server();
        let host = ServeHost::spawn(server, 1);
        let row: Vec<Value> = d.attrs().map(|a| d.value(a, 100)).collect();
        let mut accepted = 0u64;
        let mut refused = 0u64;
        for _ in 0..64 {
            match host.try_send(StreamCmd::Advance(row.clone())) {
                Ok(()) => accepted += 1,
                Err(StreamCmd::Advance(_)) => refused += 1,
                Err(_) => unreachable!("commands come back unchanged"),
            }
        }
        assert!(accepted >= 1);
        let stats = host.shutdown();
        assert_eq!(stats.published, accepted);
        assert!(refused + accepted == 64);
    }

    #[test]
    fn drop_without_shutdown_joins_the_writer() {
        let (d, server) = server();
        {
            let host = ServeHost::spawn(server, 4);
            host.advance(d.attrs().map(|a| d.value(a, 100)).collect());
        } // Drop joins; no leaked thread, no panic.
    }

    #[test]
    fn send_timeout_delivers_when_a_slot_is_free() {
        let (d, server) = server();
        let host = ServeHost::spawn(server, 4);
        let row: Vec<Value> = d.attrs().map(|a| d.value(a, 100)).collect();
        assert!(host
            .send_timeout(StreamCmd::Advance(row), Duration::from_secs(5))
            .is_ok());
        let stats = host.shutdown();
        assert_eq!(stats.published, 1);
    }

    #[test]
    fn durable_host_logs_what_it_publishes_and_recovers_bit_identically() {
        let (d, server) = server();
        let dir = tmp_dir("durable");
        let reference_digest;
        {
            let host = ServeHost::spawn_with(
                server,
                HostOptions {
                    queue: 8,
                    durability: Some(DurabilityOptions::new(&dir)),
                    ..HostOptions::default()
                },
            )
            .expect("store create");
            let mut reader = host.reader();
            for o in 100..110 {
                assert!(host.advance(d.attrs().map(|a| d.value(a, o)).collect()));
            }
            assert!(host.send(StreamCmd::Retire));
            // A rejected command must NOT reach the log.
            assert!(host.send(StreamCmd::Advance(vec![9])));
            let stats = host.shutdown();
            assert_eq!(stats.published, 11);
            assert_eq!(stats.wal_records, 11);
            assert_eq!(stats.rejected, 1);
            reference_digest = reader.load().digest();
        }
        let (host, info) = ServeHost::recover(&dir, SnapshotSpec::default(), HostOptions::queue(4))
            .expect("recover");
        assert_eq!(info.replayed, 11);
        assert_eq!(info.epoch, 11);
        assert!(!info.torn_tail);
        let mut reader = host.reader();
        assert_eq!(reader.load().digest(), reference_digest);
        assert_eq!(host.health(), HostHealth::Healthy);
        // The recovered host keeps serving *and* stays durable.
        assert!(host.advance(d.attrs().map(|a| d.value(a, 111)).collect()));
        let stats = host.shutdown();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.wal_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_rejects_a_mismatched_durability_dir() {
        let dir = tmp_dir("mismatch");
        let other = tmp_dir("mismatch-other");
        let err = ServeHost::recover(
            &dir,
            SnapshotSpec::default(),
            HostOptions {
                durability: Some(DurabilityOptions::new(&other)),
                ..HostOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RecoverError::Io(_)), "{err}");
    }

    #[test]
    fn drop_newest_counts_drops_once_the_writer_is_gone() {
        // A deterministic full-queue without fault injection: kill the
        // writer via shutdown…-like path is racy, so instead verify the
        // disconnected path returns false and Block/Drop agree on a live
        // writer; the stalled-writer drop/coalesce behavior is pinned in
        // the fault-injected chaos suite.
        let (d, server) = server();
        let host = ServeHost::spawn_with(
            server,
            HostOptions {
                queue: 1,
                overflow: OverflowPolicy::DropNewest,
                ..HostOptions::default()
            },
        )
        .unwrap();
        let row: Vec<Value> = d.attrs().map(|a| d.value(a, 100)).collect();
        let mut sent = 0u64;
        let mut dropped = 0u64;
        for _ in 0..64 {
            if host.send(StreamCmd::Advance(row.clone())) {
                sent += 1;
            } else {
                dropped += 1;
            }
        }
        let stats = host.shutdown();
        assert_eq!(stats.published, sent);
        assert_eq!(stats.dropped, dropped);
        assert_eq!(sent + dropped, 64);
    }

    #[test]
    fn coalesce_preserves_every_row_across_a_tiny_queue() {
        let (d, server) = server();
        let host = ServeHost::spawn_with(
            server,
            HostOptions {
                queue: 1,
                overflow: OverflowPolicy::CoalesceBatch,
                ..HostOptions::default()
            },
        )
        .unwrap();
        for o in 100..116 {
            assert!(host.advance(d.attrs().map(|a| d.value(a, o)).collect()));
        }
        let stats = host.shutdown();
        // Every row applied exactly once — the epoch counts rows, not
        // publishes — whether it went direct or through a batch.
        assert_eq!(stats.last_epoch, 16);
        assert_eq!(stats.rejected, 0);
        assert!(stats.published <= 16);
    }
}
