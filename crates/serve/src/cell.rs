//! A hand-rolled atomic `Arc` swap cell with hazard-pointer reclamation.
//!
//! The serving layer needs one thing from its synchronization primitive:
//! a writer that *publishes* a new immutable snapshot must never block a
//! reader, and a reader must never block anyone — no locks, no allocation,
//! no reference-count contention on the shared cell — while still freeing
//! superseded snapshots promptly. `std` offers nothing off the shelf
//! (`RwLock` blocks writers on readers, `Mutex<Arc<T>>` serializes
//! readers, and the build environment has no crates.io access for
//! `arc-swap`), so [`ArcCell`] implements the classic hazard-pointer
//! scheme directly over [`AtomicPtr`] and [`Arc::into_raw`].
//!
//! # Protocol
//!
//! The cell holds the current snapshot as a raw pointer obtained from
//! [`Arc::into_raw`], plus a fixed array of per-reader *hazard slots*.
//!
//! - **Read** ([`ReaderHandle::load`]): loop `{ p = current; hazard = p;
//!   if current == p → done }`. Once the re-check passes, the object at
//!   `p` is protected: it cannot be freed while the hazard slot holds it.
//! - **Publish** ([`ArcCell::store`]): swap `current` to the new pointer,
//!   push the old pointer onto a retire list, then scan every hazard
//!   slot and free exactly the retired pointers no slot protects.
//!
//! # Memory ordering
//!
//! Every operation that the safety argument relies on — the reader's two
//! `current` loads and its hazard store, the writer's swap and its hazard
//! scan — uses [`Ordering::SeqCst`], so all of them lie on one total
//! order `S`. Suppose a reader's load/re-check succeeded for pointer `p`:
//!
//! ```text
//!   (reader)  hazard.store(p)  ≺  current.load() == p          … in S
//!   (writer)  current.swap(new) retiring p  ≺  hazard scan     … in S
//! ```
//!
//! The re-check saw `p` still current, so the swap that retires `p`
//! comes *after* the re-check in `S`, hence after the hazard store; the
//! writer's scan comes later still and must observe the hazard slot
//! holding `p`, so it does not free it. Conversely, if the swap precedes
//! the re-check, the re-check sees the new pointer and the reader
//! retries. There is no interleaving in which a reader holds a freed
//! pointer.
//!
//! The unprotected window between the first load and the hazard store is
//! safe because the guard never dereferences `p` before the re-check
//! validates it. The ABA case — `p` freed in that window and a *new*
//! snapshot allocated at the same address — is benign: the re-check only
//! concludes "the object at `p` is current **now**", which is exactly
//! the guarantee the guard needs, regardless of which allocation's
//! lifetime the address previously belonged to.
//!
//! Slot claim/release and hazard clearing use acquire/release — they
//! only sequence a slot's reuse, not reclamation itself.
//!
//! # Reclamation guarantees
//!
//! A retired pointer that *is* protected at scan time stays on the
//! retire list and is re-examined at the next [`ArcCell::store`]; if no
//! further store happens it is freed when the cell drops. The retire
//! list is behind a [`Mutex`], but only writers ever touch it — the read
//! path takes no lock and performs no allocation.

use std::marker::PhantomData;
use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of hazard slots (= concurrently live [`ReaderHandle`]s)
/// per cell. Far above any sane reader-thread count; override with
/// [`ArcCell::with_slots`] if needed.
pub const DEFAULT_READER_SLOTS: usize = 64;

/// An atomically swappable `Arc<T>` with lock-free, allocation-free
/// reads. See the [module docs](self) for the protocol and the memory
/// ordering argument.
pub struct ArcCell<T> {
    /// The published value, as `Arc::into_raw`. Never null.
    current: AtomicPtr<T>,
    /// One hazard slot per claimed reader handle; null = not reading.
    hazards: Box<[AtomicPtr<T>]>,
    /// Which hazard slots are claimed by a live handle.
    claimed: Box<[AtomicBool]>,
    /// Superseded pointers awaiting an unprotected scan. Writer-side only.
    retired: Mutex<Vec<*mut T>>,
}

// Raw pointers poison the auto traits, but every pointer in the cell is
// an `Arc<T>` in disguise; the cell is exactly as shareable as the `T`s
// it hands out.
unsafe impl<T: Send + Sync> Send for ArcCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcCell<T> {}

impl<T> ArcCell<T> {
    /// A cell publishing `initial`, with [`DEFAULT_READER_SLOTS`] hazard
    /// slots.
    pub fn new(initial: Arc<T>) -> Self {
        Self::with_slots(initial, DEFAULT_READER_SLOTS)
    }

    /// A cell publishing `initial` with room for exactly `slots`
    /// concurrently live reader handles.
    pub fn with_slots(initial: Arc<T>, slots: usize) -> Self {
        assert!(slots > 0, "a cell without reader slots cannot be read");
        ArcCell {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            hazards: (0..slots).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
            claimed: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Claims a hazard slot and returns a reader handle that owns it (and
    /// keeps the cell alive through its `Arc`). Each handle yields one
    /// guard at a time — [`ReaderHandle::load`] takes `&mut self` — which
    /// is what makes a single slot per handle sufficient.
    ///
    /// # Panics
    /// Panics when every slot is claimed; size the cell with
    /// [`ArcCell::with_slots`] for unusual reader counts.
    pub fn reader(self: &Arc<Self>) -> ReaderHandle<T> {
        for slot in 0..self.claimed.len() {
            if self.claimed[slot]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return ReaderHandle {
                    cell: Arc::clone(self),
                    slot,
                };
            }
        }
        panic!(
            "all {} reader slots of this ArcCell are claimed",
            self.claimed.len()
        );
    }

    /// Publishes `new` and retires the previous value, freeing every
    /// retired value no reader currently protects. Lock-free for readers;
    /// concurrent writers serialize only on the retire list.
    pub fn store(&self, new: Arc<T>) {
        let fresh = Arc::into_raw(new) as *mut T;
        let old = self.current.swap(fresh, Ordering::SeqCst);
        let mut retired = self.retired.lock().expect("retire list never poisoned");
        retired.push(old);
        retired.retain(|&p| {
            let protected = self
                .hazards
                .iter()
                .any(|h| h.load(Ordering::SeqCst) == p);
            if !protected {
                // No hazard slot holds `p` at a point after it left
                // `current`, so no guard exists or can be created for it.
                unsafe { drop(Arc::from_raw(p)) };
            }
            protected
        });
    }

    /// Clones the current `Arc` out of the cell without claiming a reader
    /// slot. **Writer-side convenience only** — it briefly claims a slot
    /// internally, so it panics under the same slot exhaustion as
    /// [`ArcCell::reader`].
    pub fn load_full(self: &Arc<Self>) -> Arc<T> {
        self.reader().load_owned()
    }
}

impl<T> Drop for ArcCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no guards or handles remain (both hold an `Arc` to
        // the cell), so every pointer is unprotected.
        unsafe {
            drop(Arc::from_raw(self.current.load(Ordering::SeqCst)));
            for p in self.retired.get_mut().expect("unpoisoned").drain(..) {
                drop(Arc::from_raw(p));
            }
        }
    }
}

impl<T> std::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcCell")
            .field("slots", &self.hazards.len())
            .finish_non_exhaustive()
    }
}

/// A claimed hazard slot on an [`ArcCell`]. One per reader thread;
/// cheap to create, movable across threads, releases its slot on drop.
#[derive(Debug)]
pub struct ReaderHandle<T> {
    cell: Arc<ArcCell<T>>,
    slot: usize,
}

impl<T> ReaderHandle<T> {
    /// Acquires the current snapshot — lock-free, allocation-free. The
    /// guard pins the snapshot until dropped; `&mut self` statically
    /// enforces the one-guard-per-handle invariant the hazard slot needs.
    pub fn load(&mut self) -> SnapshotGuard<'_, T> {
        let hazard = &self.cell.hazards[self.slot];
        loop {
            let p = self.cell.current.load(Ordering::SeqCst);
            hazard.store(p, Ordering::SeqCst);
            if self.cell.current.load(Ordering::SeqCst) == p {
                // `p` was current *after* the hazard published it: any
                // store retiring it scans later and sees our slot.
                return SnapshotGuard {
                    hazard,
                    ptr: p,
                    _borrow: PhantomData,
                };
            }
            // A publish raced between load and hazard store; retry. The
            // writer swaps at most once per published snapshot, so this
            // loop is effectively wait-free in a single-writer setup.
        }
    }

    /// Acquires the current snapshot as an owned `Arc` (one atomic
    /// ref-count increment; no lock, no heap allocation). Use when the
    /// snapshot must outlive the next `load`, e.g. to diff epochs.
    pub fn load_owned(&mut self) -> Arc<T> {
        let guard = self.load();
        // Safe while the guard pins `ptr`: the allocation is live, and
        // bumping the strong count keeps it live past the guard.
        unsafe {
            Arc::increment_strong_count(guard.ptr as *const T);
            Arc::from_raw(guard.ptr as *const T)
        }
    }

    /// The cell this handle reads from.
    pub fn cell(&self) -> &Arc<ArcCell<T>> {
        &self.cell
    }
}

impl<T> Drop for ReaderHandle<T> {
    fn drop(&mut self) {
        // No guard outlives the handle (guards borrow it), so the hazard
        // slot is already null; release the slot for the next reader.
        self.cell.hazards[self.slot].store(ptr::null_mut(), Ordering::Release);
        self.cell.claimed[self.slot].store(false, Ordering::Release);
    }
}

/// A pinned snapshot: dereferences to `&T`, un-pins on drop. Holding a
/// guard never blocks the writer — it only defers reclamation of this
/// one superseded snapshot.
#[derive(Debug)]
pub struct SnapshotGuard<'h, T> {
    hazard: &'h AtomicPtr<T>,
    ptr: *mut T,
    _borrow: PhantomData<&'h T>,
}

impl<T> Deref for SnapshotGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Pinned by the hazard slot since before the validating re-load.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for SnapshotGuard<'_, T> {
    fn drop(&mut self) {
        self.hazard.store(ptr::null_mut(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts drops so reclamation is observable.
    struct Tracked {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(value: u64, drops: &Arc<AtomicUsize>) -> Arc<Tracked> {
        Arc::new(Tracked {
            value,
            drops: Arc::clone(drops),
        })
    }

    #[test]
    fn load_sees_the_latest_store() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(ArcCell::new(tracked(0, &drops)));
        let mut reader = cell.reader();
        assert_eq!(reader.load().value, 0);
        for i in 1..=10 {
            cell.store(tracked(i, &drops));
            assert_eq!(reader.load().value, i);
        }
    }

    #[test]
    fn unprotected_snapshots_are_freed_on_store() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(ArcCell::new(tracked(0, &drops)));
        for i in 1..=5 {
            cell.store(tracked(i, &drops));
        }
        // Each store retires its predecessor; with no readers, each scan
        // frees everything retired so far.
        assert_eq!(drops.load(Ordering::SeqCst), 5);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn a_guard_defers_reclamation_until_dropped() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(ArcCell::new(tracked(0, &drops)));
        let mut reader = cell.reader();
        let guard = reader.load();
        cell.store(tracked(1, &drops));
        // The guarded snapshot survived the scan.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(guard.value, 0);
        drop(guard);
        // Reclamation is lazy: the next store's scan frees it.
        cell.store(tracked(2, &drops));
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn load_owned_outlives_subsequent_stores() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(ArcCell::new(tracked(0, &drops)));
        let mut reader = cell.reader();
        let old = reader.load_owned();
        cell.store(tracked(1, &drops));
        cell.store(tracked(2, &drops));
        assert_eq!(old.value, 0);
        assert_eq!(reader.load().value, 2);
        drop(old);
    }

    #[test]
    fn slots_are_recycled() {
        let cell = Arc::new(ArcCell::with_slots(Arc::new(7u64), 2));
        let r1 = cell.reader();
        let _r2 = cell.reader();
        drop(r1);
        let mut r3 = cell.reader(); // reuses r1's slot
        assert_eq!(*r3.load(), 7);
    }

    #[test]
    #[should_panic(expected = "reader slots")]
    fn slot_exhaustion_panics() {
        let cell = Arc::new(ArcCell::with_slots(Arc::new(0u64), 1));
        let _r1 = cell.reader();
        let _r2 = cell.reader();
    }

    #[test]
    fn hammered_by_threads_every_load_is_torn_free() {
        // Writer publishes (i, !i) pairs; readers must never observe a
        // mixed pair, and every Tracked must be freed exactly once.
        let drops = Arc::new(AtomicUsize::new(0));
        let pair = |i: u64, d: &Arc<AtomicUsize>| {
            Arc::new(Tracked {
                value: i,
                drops: Arc::clone(d),
            })
        };
        let cell = Arc::new(ArcCell::new(pair(0, &drops)));
        let stop = Arc::new(AtomicBool::new(false));
        let stores = 2000u64;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut reader = cell.reader();
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let g = reader.load();
                        // Published values only, and (single writer)
                        // monotonically non-decreasing per reader.
                        assert!(g.value <= stores && g.value >= last);
                        last = g.value;
                    }
                });
            }
            for i in 1..=stores {
                cell.store(pair(i, &drops));
            }
            stop.store(true, Ordering::Relaxed);
        });
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), stores as usize + 1);
    }
}
