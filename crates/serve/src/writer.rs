//! The single-writer publisher: owns the live model, republishes a
//! fresh [`ModelSnapshot`] after every window mutation.

use std::sync::Arc;

use hypermine_core::{AdvanceError, AssociationModel};
use hypermine_data::Value;

use crate::cell::{ArcCell, ReaderHandle};
use crate::snapshot::{ModelSnapshot, SnapshotSpec};

/// Owns the live [`AssociationModel`] and an [`ArcCell`] of its latest
/// snapshot. All mutation goes through `&mut self` — the type system
/// enforces the single-writer discipline the serving layer assumes —
/// while any number of [`ReaderHandle`]s read the cell concurrently.
///
/// Every successful mutation ([`ModelServer::advance`],
/// [`ModelServer::advance_batch`], [`ModelServer::retire_oldest`])
/// rebuilds the serving indexes and atomically publishes the new
/// snapshot; failed mutations publish nothing, so readers only ever see
/// windows that actually exist.
#[derive(Debug)]
pub struct ModelServer {
    model: AssociationModel,
    spec: SnapshotSpec,
    cell: Arc<ArcCell<ModelSnapshot>>,
}

impl ModelServer {
    /// Wraps an already-built model and immediately publishes its first
    /// snapshot (so a reader acquired before any advance still gets a
    /// complete view).
    pub fn new(model: AssociationModel, spec: SnapshotSpec) -> Self {
        let snapshot = Arc::new(ModelSnapshot::build(&model, &spec));
        ModelServer {
            model,
            spec,
            cell: Arc::new(ArcCell::new(snapshot)),
        }
    }

    /// A new lock-free reader of the published snapshot. Handles are
    /// independent and movable across threads.
    pub fn reader(&self) -> ReaderHandle<ModelSnapshot> {
        self.cell.reader()
    }

    /// The snapshot cell itself, for callers that manage readers
    /// directly (e.g. the stream host hands it to reader threads).
    pub fn cell(&self) -> &Arc<ArcCell<ModelSnapshot>> {
        &self.cell
    }

    /// The live model (the writer's private view; readers must use
    /// snapshots).
    pub fn model(&self) -> &AssociationModel {
        &self.model
    }

    /// The publish-time spec.
    pub fn spec(&self) -> &SnapshotSpec {
        &self.spec
    }

    /// Slides the window one observation forward and publishes. Returns
    /// the published epoch.
    pub fn advance(&mut self, row: &[Value]) -> Result<u64, AdvanceError> {
        self.model.advance(row)?;
        Ok(self.publish())
    }

    /// Slides the window `rows.len()` steps in one batch and publishes
    /// once. Returns the published epoch.
    pub fn advance_batch(&mut self, rows: &[Vec<Value>]) -> Result<u64, AdvanceError> {
        self.model.advance_batch(rows)?;
        Ok(self.publish())
    }

    /// Contracts the window from the old end and publishes. Returns the
    /// published epoch.
    pub fn retire_oldest(&mut self) -> Result<u64, AdvanceError> {
        self.model.retire_oldest()?;
        Ok(self.publish())
    }

    /// Rebuilds the serving indexes from the current model state and
    /// atomically publishes them. Readers switch over at their next
    /// load; in-flight guards keep the superseded snapshot alive until
    /// dropped.
    pub fn publish(&mut self) -> u64 {
        let snapshot = ModelSnapshot::build(&self.model, &self.spec);
        let epoch = snapshot.epoch();
        self.cell.store(Arc::new(snapshot));
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypermine_core::ModelConfig;
    use hypermine_data::{AttrId, Database};

    fn db() -> Database {
        let x: Vec<Value> = (0..120).map(|i| (i % 3 + 1) as Value).collect();
        let z: Vec<Value> = (0..120).map(|i| ((i / 7) % 3 + 1) as Value).collect();
        Database::from_columns(
            vec!["x".into(), "y".into(), "z".into()],
            3,
            vec![x.clone(), x, z],
        )
        .unwrap()
    }

    #[test]
    fn mutations_republish_and_errors_do_not() {
        let d = db();
        let model = AssociationModel::build(&d.slice_obs(0..100), &ModelConfig::default()).unwrap();
        let mut server = ModelServer::new(model, SnapshotSpec::default());
        let mut reader = server.reader();
        assert_eq!(reader.load().epoch(), 0);

        let row: Vec<Value> = d.attrs().map(|a| d.value(a, 100)).collect();
        assert_eq!(server.advance(&row).unwrap(), 1);
        assert_eq!(reader.load().epoch(), 1);

        // Invalid row: no publish, reader still sees epoch 1.
        assert!(server.advance(&[1]).is_err());
        assert_eq!(reader.load().epoch(), 1);

        assert_eq!(server.retire_oldest().unwrap(), 2);
        let snap = reader.load();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.database().num_obs(), 99);
        assert_eq!(snap.graph().num_edges(), server.model().hypergraph().num_edges());
    }

    #[test]
    fn batch_advance_publishes_once_at_the_final_epoch() {
        let d = db();
        let model = AssociationModel::build(&d.slice_obs(0..100), &ModelConfig::default()).unwrap();
        let mut server = ModelServer::new(model, SnapshotSpec::default());
        let rows: Vec<Vec<Value>> = (100..105)
            .map(|o| d.attrs().map(|a| d.value(a, o)).collect())
            .collect();
        assert_eq!(server.advance_batch(&rows).unwrap(), 5);
        let mut reader = server.reader();
        assert_eq!(reader.load().epoch(), 5);
        let _ = AttrId::new(0);
    }
}
