//! Chaos suite for the durability + fault-containment layer
//! (`--features fault-injection`; compiles to nothing without it).
//!
//! The headline property: for EVERY kill point k in a ≥200-record stream
//! — mixed `Advance`/`AdvanceBatch`/`Retire`, spanning many segment
//! rotations, killed both cleanly between records and mid-write (torn)
//! — recovery yields a model bit-identical (content digest, which folds
//! in edges, ids, ACVs, and the epoch) to the live writer at the last
//! durable record. On-disk crash states are reconstructed exactly from
//! the live run's own files, so the sweep is O(N) live work + N
//! recoveries instead of N full reruns.
//!
//! Set `HYPERMINE_RECOVERY_TRACE=<path>` to dump a JSON-lines trace of
//! every kill point's recovery (CI uploads it next to `bench-summary`).

#![cfg(feature = "fault-injection")]

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hypermine_core::{AssociationModel, ModelConfig};
use hypermine_data::{Database, Value};
use hypermine_serve::store::{self, WalRecord, WalStore};
use hypermine_serve::{
    DurabilityOptions, FaultPlan, HostHealth, HostOptions, ModelServer, ModelSnapshot, ServeHost,
    SnapshotSpec, StreamCmd,
};

const WINDOW: usize = 40;
const SOURCE_ROWS: usize = 320;
/// Tiny rotation budget so the sweep crosses many checkpoint rotations.
const SEGMENT_BYTES: u64 = 256;

fn stream_db() -> Database {
    let x: Vec<Value> = (0..SOURCE_ROWS).map(|i| (i % 3 + 1) as Value).collect();
    let y: Vec<Value> = (0..SOURCE_ROWS).map(|i| ((i / 5) % 3 + 1) as Value).collect();
    let z: Vec<Value> = (0..SOURCE_ROWS).map(|i| ((i / 7) % 3 + 1) as Value).collect();
    let w: Vec<Value> = (0..SOURCE_ROWS)
        .map(|i| ((i * 2 + i / 11) % 3 + 1) as Value)
        .collect();
    Database::from_columns(
        vec!["x".into(), "y".into(), "z".into(), "w".into()],
        3,
        vec![x, y, z, w],
    )
    .unwrap()
}

fn row_at(d: &Database, o: usize) -> Vec<Value> {
    d.attrs().map(|a| d.value(a, o)).collect()
}

/// ≥200 records mixing all three durable variants: every 11th record is
/// a 2-row batch (so kills land mid-batch-record), every 13th a retire.
fn schedule(d: &Database) -> Vec<WalRecord> {
    let mut records = Vec::new();
    let mut next = WINDOW;
    let mut i = 0usize;
    while records.len() < 208 {
        if i % 13 == 5 {
            records.push(WalRecord::Retire);
        } else if i % 11 == 3 {
            records.push(WalRecord::AdvanceBatch(vec![
                row_at(d, next),
                row_at(d, next + 1),
            ]));
            next += 2;
        } else {
            records.push(WalRecord::Advance(row_at(d, next)));
            next += 1;
        }
        i += 1;
    }
    assert!(next <= SOURCE_ROWS, "fixture too short for the schedule");
    records
}

fn apply(model: &mut AssociationModel, record: &WalRecord) {
    match record {
        WalRecord::Advance(row) => model.advance(row).unwrap(),
        WalRecord::AdvanceBatch(rows) => model.advance_batch(rows).unwrap(),
        WalRecord::Retire => model.retire_oldest().unwrap(),
    };
}

fn digest(model: &AssociationModel) -> u64 {
    ModelSnapshot::build(model, &SnapshotSpec::default()).digest()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hypermine-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Byte spans of the records inside one WAL segment (skipping the
/// 16-byte header), parsed off the length prefixes.
fn record_spans(segment: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 16;
    while pos < segment.len() {
        let len = u32::from_le_bytes(segment[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 4 + len + 8;
        assert!(end <= segment.len(), "live run left a torn record");
        spans.push((pos, end));
        pos = end;
    }
    spans
}

/// The full-sweep property: kill at EVERY record index, clean and torn,
/// recover, verify bit-identity against the live model's state at the
/// last durable record.
#[test]
fn recovery_is_bit_identical_at_every_kill_point() {
    let d = stream_db();
    let cfg = ModelConfig::default();
    let records = schedule(&d);
    let n = records.len();
    assert!(n >= 200);

    // Live run: one model, one durable store, a digest captured after
    // every record.
    let live_dir = tmp_dir("live");
    let mut model = AssociationModel::build(&d.slice_obs(0..WINDOW), &cfg).unwrap();
    let mut store = WalStore::create(&live_dir, SEGMENT_BYTES, &model).unwrap();
    let mut digests = vec![digest(&model)];
    for record in &records {
        apply(&mut model, record);
        store.append(record).unwrap();
        store.maybe_rotate(&model).unwrap();
        digests.push(digest(&model));
    }
    let last_seq = store.seq();
    drop(store);
    assert!(last_seq >= 4, "budget too large to exercise rotation");

    // Map every record index to (segment seq, byte span in that file).
    let segment_bytes_of =
        |seq: u64| -> Vec<u8> { fs::read(live_dir.join(format!("wal-{seq:08}.log"))).unwrap() };
    let mut map: Vec<(u64, usize, usize)> = Vec::new();
    for seq in 0..=last_seq {
        let bytes = segment_bytes_of(seq);
        for (start, end) in record_spans(&bytes) {
            map.push((seq, start, end));
        }
    }
    assert_eq!(map.len(), n);

    let trace_path = std::env::var_os("HYPERMINE_RECOVERY_TRACE");
    let mut trace = trace_path.as_ref().map(|p| {
        if let Some(parent) = Path::new(p).parent() {
            let _ = fs::create_dir_all(parent);
        }
        fs::File::create(p).expect("recovery trace file")
    });

    let crash_dir = tmp_dir("crash");
    for kill in 0..=n {
        // Reconstruct the on-disk state of a crash after `kill` durable
        // records: the newest checkpoint at that moment plus its paired
        // segment, truncated at the kill record. Odd kill points tear
        // the next record mid-write instead of cutting cleanly.
        let (seq, cut, torn) = if kill == n {
            let bytes = segment_bytes_of(last_seq);
            (last_seq, bytes.len(), false)
        } else {
            let (seq, start, end) = map[kill];
            if kill % 2 == 1 {
                (seq, start + (end - start) / 2, true)
            } else {
                (seq, start, false)
            }
        };
        let _ = fs::remove_dir_all(&crash_dir);
        fs::create_dir_all(&crash_dir).unwrap();
        let ckpt = format!("checkpoint-{seq:08}.bin");
        fs::copy(live_dir.join(&ckpt), crash_dir.join(&ckpt)).unwrap();
        let segment = segment_bytes_of(seq);
        fs::write(
            crash_dir.join(format!("wal-{seq:08}.log")),
            &segment[..cut],
        )
        .unwrap();

        let (recovered, info) = store::recover(&crash_dir).expect("recovery");
        assert_eq!(
            digest(&recovered),
            digests[kill],
            "kill point {kill} (seq {seq}, torn {torn}) diverged"
        );
        assert_eq!(info.seq, seq);
        assert_eq!(info.torn_tail, torn);
        assert_eq!(
            info.checkpoint_epoch + count_epochs(&records[kill - info.replayed as usize..kill]),
            info.epoch
        );
        if let Some(out) = trace.as_mut() {
            writeln!(
                out,
                "{{\"kill\": {kill}, \"seq\": {seq}, \"torn\": {torn}, \"replayed\": {}, \"epoch\": {}, \"digest\": {}}}",
                info.replayed, info.epoch, digests[kill]
            )
            .unwrap();
        }
    }

    let _ = fs::remove_dir_all(&live_dir);
    let _ = fs::remove_dir_all(&crash_dir);
}

/// Epoch delta the given records contribute (batch counts its rows).
fn count_epochs(records: &[WalRecord]) -> u64 {
    records
        .iter()
        .map(|r| match r {
            WalRecord::Advance(_) => 1,
            WalRecord::AdvanceBatch(rows) => rows.len() as u64,
            WalRecord::Retire => 1,
        })
        .sum()
}

/// A seeded plan drives the store to a deterministic freeze point;
/// recovery lands exactly on the live model at that point.
#[test]
fn seeded_fault_plans_freeze_and_recover_deterministically() {
    let d = stream_db();
    let cfg = ModelConfig::default();
    let records = schedule(&d);
    for seed in [3u64, 17, 91] {
        let dir = tmp_dir(&format!("seeded-{seed}"));
        let mut model = AssociationModel::build(&d.slice_obs(0..WINDOW), &cfg).unwrap();
        let mut store = WalStore::create(&dir, 0, &model)
            .unwrap()
            .with_faults(FaultPlan::seeded(seed, records.len() as u64));
        let mut durable = 0usize;
        let mut frozen_digest = digest(&model);
        for record in &records {
            apply(&mut model, record);
            // The host freezes durability on the first failed append;
            // mirror that contract here.
            if store.append(record).is_err() {
                break;
            }
            durable += 1;
            frozen_digest = digest(&model);
        }
        drop(store);
        let (recovered, info) = store::recover(&dir).expect("recovery");
        assert_eq!(info.replayed, durable as u64);
        assert_eq!(digest(&recovered), frozen_digest, "seed {seed} diverged");
        let _ = fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Host-level fault containment
// ---------------------------------------------------------------------------

fn host_fixture() -> (Database, ModelServer) {
    let d = stream_db();
    let model = AssociationModel::build(&d.slice_obs(0..WINDOW), &ModelConfig::default()).unwrap();
    (d, ModelServer::new(model, SnapshotSpec::default()))
}

fn wait_for_health(host: &ServeHost, want: HostHealth) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while host.health() != want {
        assert!(Instant::now() < deadline, "health never became {want:?}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn injected_io_error_freezes_durability_but_keeps_serving() {
    let (d, server) = host_fixture();
    let dir = tmp_dir("io-freeze");
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 4,
            durability: Some(DurabilityOptions::new(&dir)),
            faults: Some(FaultPlan::new().io_error_at(5)),
            ..HostOptions::default()
        },
    )
    .unwrap();
    let mut reader = host.reader();
    for o in WINDOW..WINDOW + 12 {
        assert!(host.advance(row_at(&d, o)));
    }
    wait_for_health(&host, HostHealth::Degraded);
    let stats = host.shutdown();
    // All 12 commands applied and published; the log froze at record 5.
    assert_eq!(stats.published, 12);
    assert_eq!(stats.wal_records, 5);
    assert!(stats.last_error.unwrap().contains("wal append failed"));
    assert_eq!(reader.load().epoch(), 12);

    // Recovery honestly reflects only the durable prefix.
    let (recovered, info) = store::recover(&dir).unwrap();
    assert_eq!(info.replayed, 5);
    assert_eq!(recovered.epoch(), 5);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_leaves_a_recoverable_tail() {
    let (d, server) = host_fixture();
    let dir = tmp_dir("torn-host");
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 4,
            durability: Some(DurabilityOptions::new(&dir)),
            faults: Some(FaultPlan::new().torn_write_at(7)),
            ..HostOptions::default()
        },
    )
    .unwrap();
    for o in WINDOW..WINDOW + 10 {
        assert!(host.advance(row_at(&d, o)));
    }
    let stats = host.shutdown();
    assert_eq!(stats.wal_records, 7);
    let (recovered, info) = store::recover(&dir).unwrap();
    assert!(info.torn_tail, "the half-written record reads as torn");
    assert_eq!(info.replayed, 7);
    assert_eq!(recovered.epoch(), 7);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn contained_panic_quarantines_the_command_and_keeps_the_stream_alive() {
    let (d, server) = host_fixture();
    let dir = tmp_dir("contained");
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 4,
            durability: Some(DurabilityOptions::new(&dir)),
            faults: Some(FaultPlan::new().panic_at(3)),
            ..HostOptions::default()
        },
    )
    .unwrap();
    let mut reader = host.reader();
    for o in WINDOW..WINDOW + 10 {
        assert!(host.advance(row_at(&d, o)));
    }
    wait_for_health(&host, HostHealth::Degraded);
    let stats = host.shutdown();
    // Command 3 was quarantined; the other 9 applied, published, and —
    // because a panicked command never reaches the log — stayed in
    // lockstep with the WAL.
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.published, 9);
    assert_eq!(stats.wal_records, 9);
    let err = stats.last_error.unwrap();
    assert!(err.contains("injected writer panic at command 3"), "{err}");
    assert_eq!(reader.load().epoch(), 9);

    let (recovered, info) = store::recover(&dir).unwrap();
    assert_eq!(info.replayed, 9);
    assert_eq!(
        ModelSnapshot::build(&recovered, &SnapshotSpec::default()).digest(),
        reader.load().digest(),
        "recovery equals the live post-quarantine model"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The satellite regression: a writer killed by an uncontained panic
/// must never abort the process via Drop — not on a plain drop, and not
/// on a drop that happens *during unwinding* (the double-panic case the
/// old `join().expect(...)` turned into an abort).
#[test]
fn dead_writer_drop_never_aborts() {
    // Plain drop of a host whose writer panicked.
    let (d, server) = host_fixture();
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 4,
            faults: Some(FaultPlan::new().lethal_panic_at(1)),
            ..HostOptions::default()
        },
    )
    .unwrap();
    assert!(host.advance(row_at(&d, WINDOW)));
    host.advance(row_at(&d, WINDOW + 1));
    wait_for_health(&host, HostHealth::Failed);
    drop(host); // must not panic, must not abort

    // Drop during unwinding: the host dies inside a panicking thread.
    let (d, server) = host_fixture();
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 4,
            faults: Some(FaultPlan::new().lethal_panic_at(0)),
            ..HostOptions::default()
        },
    )
    .unwrap();
    host.advance(row_at(&d, WINDOW));
    wait_for_health(&host, HostHealth::Failed);
    let outcome = std::thread::spawn(move || {
        let _owned = host;
        panic!("unwind with a dead-writer host in scope");
    })
    .join();
    // The panic propagates as an Err — the process did NOT abort.
    assert!(outcome.is_err());
}

#[test]
fn shutdown_of_a_dead_writer_reports_failed_health_and_partial_stats() {
    let (d, server) = host_fixture();
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 4,
            faults: Some(FaultPlan::new().lethal_panic_at(0)),
            ..HostOptions::default()
        },
    )
    .unwrap();
    let mut reader = host.reader();
    host.advance(row_at(&d, WINDOW));
    wait_for_health(&host, HostHealth::Failed);
    let stats = host.shutdown();
    assert!(stats.panics >= 1);
    let err = stats.last_error.unwrap();
    assert!(err.contains("writer thread died"), "{err}");
    // The last good snapshot keeps serving.
    assert_eq!(reader.load().epoch(), 0);
    assert!(reader.load().verify_digest());
}

// ---------------------------------------------------------------------------
// Overflow policies under a deterministically stalled writer
// ---------------------------------------------------------------------------

#[test]
fn drop_newest_counts_drops_under_a_stalled_writer() {
    let (d, server) = host_fixture();
    let plan = FaultPlan::new();
    plan.stall();
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 1,
            overflow: hypermine_serve::OverflowPolicy::DropNewest,
            faults: Some(plan.clone()),
            ..HostOptions::default()
        },
    )
    .unwrap();
    // The writer takes the first command and parks at the gate
    // (`send_timeout` retries until the slot frees, making the handoff
    // deterministic); the second fills the only queue slot; everything
    // after that drops.
    assert!(host.advance(row_at(&d, WINDOW)));
    assert!(host
        .send_timeout(
            StreamCmd::Advance(row_at(&d, WINDOW + 1)),
            Duration::from_secs(10),
        )
        .is_ok());
    let mut dropped = 0;
    for o in WINDOW + 2..WINDOW + 8 {
        if !host.advance(row_at(&d, o)) {
            dropped += 1;
        }
    }
    assert_eq!(dropped, 6);
    plan.release();
    let stats = host.shutdown();
    assert_eq!(stats.published, 2);
    assert_eq!(stats.dropped, 6);
    assert_eq!(stats.last_epoch, 2);
}

#[test]
fn coalesce_batches_overflow_rows_under_a_stalled_writer() {
    let (d, server) = host_fixture();
    let plan = FaultPlan::new();
    plan.stall();
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 1,
            overflow: hypermine_serve::OverflowPolicy::CoalesceBatch,
            faults: Some(plan.clone()),
            ..HostOptions::default()
        },
    )
    .unwrap();
    // Row 0 goes to the writer's hand (it parks at the gate holding
    // it); row 1 deterministically fills the queue slot; rows 2..8 park
    // in the coalesce buffer and flush as one batch at shutdown.
    assert!(host.advance(row_at(&d, WINDOW)));
    assert!(host
        .send_timeout(
            StreamCmd::Advance(row_at(&d, WINDOW + 1)),
            Duration::from_secs(10),
        )
        .is_ok());
    for o in WINDOW + 2..WINDOW + 8 {
        assert!(host.advance(row_at(&d, o)));
    }
    plan.release();
    let stats = host.shutdown();
    // No row lost, fewer publishes: 2 direct + 1 batch of 6.
    assert_eq!(stats.coalesced, 6);
    assert_eq!(stats.last_epoch, 8);
    assert_eq!(stats.published, 3);
    assert_eq!(stats.dropped, 0);
}

#[test]
fn send_timeout_gives_up_on_a_stalled_writer_and_returns_the_command() {
    let (d, server) = host_fixture();
    let plan = FaultPlan::new();
    plan.stall();
    let host = ServeHost::spawn_with(
        server,
        HostOptions {
            queue: 1,
            faults: Some(plan.clone()),
            ..HostOptions::default()
        },
    )
    .unwrap();
    assert!(host.advance(row_at(&d, WINDOW)));
    assert!(host
        .send_timeout(
            StreamCmd::Advance(row_at(&d, WINDOW + 1)),
            Duration::from_secs(10),
        )
        .is_ok());
    let returned = host
        .send_timeout(
            StreamCmd::Advance(row_at(&d, WINDOW + 2)),
            Duration::from_millis(50),
        )
        .unwrap_err();
    assert_eq!(returned, StreamCmd::Advance(row_at(&d, WINDOW + 2)));
    plan.release();
    let stats = host.shutdown();
    assert_eq!(stats.published, 2);
}
