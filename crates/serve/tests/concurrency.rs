//! Multi-reader / single-writer stress tests for the serving layer.
//!
//! Three properties, each load-bearing for correctness claims the crate
//! makes:
//!
//! 1. **Epoch monotonicity** — per reader, observed epochs never
//!    regress, across advances, batch advances, and retirements.
//! 2. **No torn snapshots** — every observed snapshot's content digest
//!    verifies, i.e. every answer is internally consistent with exactly
//!    one epoch.
//! 3. **Per-epoch bit-identity** — every snapshot any reader ever
//!    observed is bit-identical (edges, dominator, classifier votes) to
//!    a from-scratch batch rebuild of that epoch's window.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use hypermine_core::{AssociationClassifier, AssociationModel, ModelConfig};
use hypermine_data::{Database, Value};
use hypermine_serve::{
    DurabilityOptions, HostHealth, HostOptions, ModelServer, ModelSnapshot, ServeHost,
    SnapshotSpec, StreamCmd,
};

/// Three correlated attributes + one noise attribute, enough structure
/// for a non-trivial hypergraph and dominator at every window.
fn stream_db(len: usize) -> Database {
    let x: Vec<Value> = (0..len).map(|i| (i % 3 + 1) as Value).collect();
    let y: Vec<Value> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| if i % 10 == 0 { (v % 3) + 1 } else { v })
        .collect();
    let z: Vec<Value> = (0..len).map(|i| ((i / 7) % 3 + 1) as Value).collect();
    let w: Vec<Value> = (0..len).map(|i| ((i * 5 / 3) % 3 + 1) as Value).collect();
    Database::from_columns(
        vec!["x".into(), "y".into(), "z".into(), "w".into()],
        3,
        vec![x, y, z, w],
    )
    .unwrap()
}

fn row_at(d: &Database, obs: usize) -> Vec<Value> {
    d.attrs().map(|a| d.value(a, obs)).collect()
}

/// Asserts `snap` is bit-identical to a fresh batch rebuild of
/// `window`: hypergraph, dominator, and classifier votes.
fn assert_snapshot_matches_batch_rebuild(snap: &ModelSnapshot, window: &Database) {
    let cfg = snap.config().clone();
    let rebuilt = AssociationModel::build(window, &cfg).expect("windows use valid gammas");
    assert_eq!(snap.graph().num_edges(), rebuilt.hypergraph().num_edges());
    for (id, e) in rebuilt.hypergraph().edges() {
        let o = snap.graph().edge(id);
        assert_eq!(e.tail(), o.tail());
        assert_eq!(e.head(), o.head());
        assert_eq!(e.weight().to_bits(), o.weight().to_bits());
    }
    // The cached dominator equals one freshly derived from the rebuild.
    let fresh = ModelSnapshot::build(&rebuilt, &SnapshotSpec::default());
    assert_eq!(snap.dominator(), fresh.dominator());
    // Classifier parity on a probe row (values all in range by
    // construction of the fixture).
    let clf = AssociationClassifier::new(&rebuilt, snap.known());
    let mut scratch = snap.scratch();
    for obs in [0, window.num_obs() / 2, window.num_obs() - 1] {
        let row = row_at(window, obs);
        let values: Vec<Value> = snap.known().iter().map(|&a| row[a.index()]).collect();
        for target in window.attrs().filter(|&t| !snap.is_leading(t)) {
            let got = snap.predict_into(&mut scratch, &row, target);
            match clf.predict(&values, target) {
                None => assert_eq!(got, None),
                Some(p) => {
                    let (v, c) = got.expect("vote parity");
                    assert_eq!(v, p.value);
                    assert_eq!(c.to_bits(), p.confidence.to_bits());
                }
            }
        }
    }
}

#[test]
fn concurrent_readers_see_monotone_untorn_bit_identical_epochs() {
    const WINDOW: usize = 80;
    const SLIDES: usize = 24;
    let d = stream_db(WINDOW + SLIDES);
    let cfg = ModelConfig::default();
    let model = AssociationModel::build(&d.slice_obs(0..WINDOW), &cfg).unwrap();
    let mut server = ModelServer::new(model, SnapshotSpec::default());

    // Every window the writer will publish, keyed by epoch. Epoch 0 is
    // the initial window; a retirement halfway through contracts it.
    let windows = Mutex::new(BTreeMap::<u64, Database>::new());
    windows
        .lock()
        .unwrap()
        .insert(0, server.model().database().clone());

    let done = AtomicBool::new(false);
    let observed = Mutex::new(BTreeMap::<u64, std::sync::Arc<ModelSnapshot>>::new());
    std::thread::scope(|s| {
        for _ in 0..3 {
            let mut reader = server.reader();
            let done = &done;
            let observed = &observed;
            s.spawn(move || {
                let mut last = 0u64;
                let mut finish = false;
                while !finish {
                    // One guaranteed load *after* `done` (release/acquire
                    // pairs it with the final publish), so every reader
                    // also observes the last epoch.
                    finish = done.load(Ordering::Acquire);
                    let snap = reader.load_owned();
                    // 1: epochs never regress for one reader.
                    assert!(snap.epoch() >= last, "epoch regressed");
                    last = snap.epoch();
                    // 2: never a torn snapshot.
                    assert!(snap.verify_digest(), "torn snapshot observed");
                    observed
                        .lock()
                        .unwrap()
                        .entry(snap.epoch())
                        .or_insert_with(|| std::sync::Arc::clone(&snap));
                }
            });
        }

        // The writer: slides with a mid-stream retirement, recording
        // each published epoch's exact window.
        for (i, obs) in (WINDOW..WINDOW + SLIDES).enumerate() {
            let epoch = if i == SLIDES / 2 {
                server.retire_oldest().unwrap()
            } else {
                server.advance(&row_at(&d, obs)).unwrap()
            };
            windows
                .lock()
                .unwrap()
                .insert(epoch, server.model().database().clone());
        }
        done.store(true, Ordering::Release);
    });

    let windows = windows.into_inner().unwrap();
    let observed = observed.into_inner().unwrap();
    // Readers raced a fast writer, so they saw a subset of epochs; the
    // latest epoch is always seen (readers spin past `done`).
    assert!(observed.contains_key(&(SLIDES as u64)));
    assert!(observed.len() >= 2, "readers observed multiple epochs");
    // 3: everything observed is bit-identical to a batch rebuild.
    for (epoch, snap) in &observed {
        let window = windows.get(epoch).expect("only published epochs observed");
        assert_eq!(snap.database(), window);
        assert_snapshot_matches_batch_rebuild(snap, window);
    }
}

#[test]
fn host_keeps_epochs_monotone_across_mixed_commands() {
    const WINDOW: usize = 60;
    let d = stream_db(WINDOW + 30);
    let model =
        AssociationModel::build(&d.slice_obs(0..WINDOW), &ModelConfig::default()).unwrap();
    let host = ServeHost::spawn(ModelServer::new(model, SnapshotSpec::default()), 4);

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let mut reader = host.reader();
            let done = &done;
            s.spawn(move || {
                let mut last = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = reader.load();
                    assert!(snap.epoch() >= last);
                    assert!(snap.verify_digest());
                    // The snapshot is always internally queryable.
                    assert_eq!(snap.num_attrs(), 4);
                    last = snap.epoch();
                }
            });
        }
        let mut obs = WINDOW;
        for i in 0..12 {
            match i % 4 {
                3 => assert!(host.send(StreamCmd::Retire)),
                2 => {
                    let rows = vec![row_at(&d, obs), row_at(&d, obs + 1)];
                    obs += 2;
                    assert!(host.send(StreamCmd::AdvanceBatch(rows)));
                }
                _ => {
                    assert!(host.advance(row_at(&d, obs)));
                    obs += 1;
                }
            }
        }
        let stats = host.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.published, 12);
        // 6 advances + 3 batches of 2 + 3 retires = 15 epochs.
        assert_eq!(stats.last_epoch, 15);
        done.store(true, Ordering::Relaxed);
    });
}

/// Satellite property for crash recovery: readers created from a
/// *recovered* host resume exactly where the pre-crash writer left off —
/// the first load is the recovered epoch, every later load is monotone
/// and digest-valid, and the final snapshot is bit-identical to a batch
/// rebuild of its window.
#[test]
fn readers_on_a_recovered_host_resume_monotone_digest_valid_epochs() {
    const WINDOW: usize = 60;
    const BEFORE_CRASH: usize = 14;
    const AFTER_RECOVER: usize = 10;
    let d = stream_db(WINDOW + BEFORE_CRASH + AFTER_RECOVER);
    let dir = std::env::temp_dir().join(format!(
        "hypermine-concurrency-recover-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Pre-crash durable host: stream, then drop the host. Recovery only
    // reads what the WAL holds, so a clean shutdown is incidental.
    let model = AssociationModel::build(&d.slice_obs(0..WINDOW), &ModelConfig::default()).unwrap();
    let host = ServeHost::spawn_with(
        ModelServer::new(model, SnapshotSpec::default()),
        HostOptions {
            queue: 4,
            durability: Some(DurabilityOptions::new(&dir)),
            ..HostOptions::default()
        },
    )
    .expect("store create");
    for obs in WINDOW..WINDOW + BEFORE_CRASH {
        assert!(host.advance(row_at(&d, obs)));
    }
    let stats = host.shutdown();
    assert_eq!(stats.wal_records, BEFORE_CRASH as u64);

    let (host, info) = ServeHost::recover(&dir, SnapshotSpec::default(), HostOptions::queue(4))
        .expect("recover");
    assert_eq!(info.epoch, BEFORE_CRASH as u64);
    assert_eq!(host.health(), HostHealth::Healthy);

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let mut reader = host.reader();
            let done = &done;
            s.spawn(move || {
                // The very first load already serves the recovered epoch.
                let mut last = reader.load().epoch();
                assert!(last >= BEFORE_CRASH as u64, "reader saw a pre-crash epoch");
                while !done.load(Ordering::Relaxed) {
                    let snap = reader.load();
                    assert!(snap.epoch() >= last, "epoch regressed after recovery");
                    assert!(snap.verify_digest(), "torn snapshot from a recovered host");
                    last = snap.epoch();
                }
            });
        }
        let mut obs = WINDOW + BEFORE_CRASH;
        for i in 0..AFTER_RECOVER {
            if i == AFTER_RECOVER / 2 {
                assert!(host.send(StreamCmd::Retire));
            } else {
                assert!(host.advance(row_at(&d, obs)));
                obs += 1;
            }
        }
        let mut reader = host.reader();
        let stats = host.shutdown();
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.last_epoch, (BEFORE_CRASH + AFTER_RECOVER) as u64);
        done.store(true, Ordering::Relaxed);
        // The stream the recovered host served is bit-identical to a
        // from-scratch batch rebuild of the final window.
        let snap = reader.load();
        assert_eq!(snap.epoch(), (BEFORE_CRASH + AFTER_RECOVER) as u64);
        assert_snapshot_matches_batch_rebuild(&snap, snap.database());
    });
    let _ = std::fs::remove_dir_all(&dir);
}
