//! The zero-allocation gate: after snapshot acquisition, the single-
//! reader query path must not touch the heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the
//! measured region pins snapshots and runs the full query mix —
//! dominator membership, ranked edges, best edges, rule reads, and
//! classification into a pre-sized scratch — and the allocation counter
//! must not move. This is its own integration binary because a global
//! allocator is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hypermine_core::{AssociationModel, ModelConfig};
use hypermine_data::{AttrId, Database, Value};
use hypermine_serve::{ModelServer, SnapshotSpec};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn query_path_does_not_allocate_after_snapshot_acquisition() {
    // Setup may allocate freely: model, server, first snapshot, reader
    // handle, scratch, probe row.
    let x: Vec<Value> = (0..120).map(|i| (i % 3 + 1) as Value).collect();
    let y: Vec<Value> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| if i % 10 == 0 { (v % 3) + 1 } else { v })
        .collect();
    let z: Vec<Value> = (0..120).map(|i| ((i / 7) % 3 + 1) as Value).collect();
    let d = Database::from_columns(
        vec!["x".into(), "y".into(), "z".into()],
        3,
        vec![x, y, z],
    )
    .unwrap();
    let model = AssociationModel::build(&d, &ModelConfig::default()).unwrap();
    let mut server = ModelServer::new(model, SnapshotSpec::default());
    server.advance(&[1, 1, 2]).unwrap(); // exercise a post-slide snapshot
    let mut reader = server.reader();
    let mut scratch = reader.load().scratch();
    let row: Vec<Value> = vec![2, 2, 1];
    let n = 3u32;

    // Warm-up: one full mix, so any lazy init (there should be none)
    // happens outside the measured region.
    let mut sink = 0u64;
    for probe in 0..n {
        let snap = reader.load();
        let a = AttrId::new(probe);
        sink ^= snap.epoch() ^ snap.is_leading(a) as u64;
        if let Some((v, _)) = (!snap.is_leading(a))
            .then(|| snap.predict_into(&mut scratch, &row, a))
            .flatten()
        {
            sink ^= v as u64;
        }
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..10_000u32 {
        // Pin the current snapshot: two atomic loads + one store.
        let snap = reader.load();
        let a = AttrId::new(round % n);
        sink ^= snap.epoch();
        sink ^= snap.is_leading(a) as u64;
        if let Some(&e) = snap.ranked_in_edges(a).first() {
            sink ^= snap.edge(e).weight().to_bits();
        }
        if let Some(e) = snap.best_in_edge(a) {
            sink ^= e.index() as u64;
        }
        if let Some(rule) = snap.top_rules().first() {
            sink ^= rule.support.to_bits();
        }
        sink ^= snap.degree_stats().weighted_in[a.index()].to_bits();
        if !snap.is_leading(a) {
            // Classification into the pre-sized scratch.
            if let Some((v, c)) = snap.predict_into(&mut scratch, &row, a) {
                sink ^= v as u64 ^ c.to_bits();
            }
            sink ^= snap.predict_or_majority(&mut scratch, &row, a) as u64;
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "the post-acquisition query path allocated (sink {sink})"
    );
}

#[test]
fn load_owned_does_not_allocate() {
    let x: Vec<Value> = (0..90).map(|i| (i % 3 + 1) as Value).collect();
    let d = Database::from_columns(vec!["x".into(), "y".into()], 3, vec![x.clone(), x]).unwrap();
    let model = AssociationModel::build(&d, &ModelConfig::default()).unwrap();
    let server = ModelServer::new(model, SnapshotSpec::default());
    let mut reader = server.reader();
    let warm = reader.load_owned();
    drop(warm);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut sink = 0u64;
    for _ in 0..1_000 {
        // An owned pin is one strong-count increment, not a clone.
        let snap = reader.load_owned();
        sink ^= snap.epoch();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "load_owned allocated (sink {sink})");
}
