//! Streaming leading indicators: a rolling 252-day window over two
//! simulated trading years, advanced one day at a time.
//!
//! Production framing of Section 5.1.1's flagship workload: every new
//! trading day appends one discretized delta observation, the oldest
//! day retires, and the association model follows along via
//! `AssociationModel::advance` — bit-identical to re-mining the window
//! from scratch, at a fraction of the cost. The leading-indicator
//! (dominator) set is re-derived from the maintained hypergraph on every
//! slide; the monthly report shows how it drifts.
//!
//! ```bash
//! cargo run --release --example streaming_market
//! ```

use hypermine::core::{
    node_of, set_cover_adaptation, AssociationModel, ModelConfig, SetCoverOptions,
};
use hypermine::data::Value;
use hypermine::market::{discretize_market, Market, SimConfig, Universe};
use hypermine_hypergraph::NodeId;
use std::time::Instant;

const TICKERS: usize = 40;
const WINDOW: usize = 252; // one trading year of delta observations
const K: u8 = 5; // paper configuration C2

fn main() {
    // Two simulated years of closes -> 503 delta days: one year to fit
    // the initial model, one year to stream through it.
    let market = Market::simulate(
        Universe::sp500(TICKERS),
        &SimConfig {
            n_days: 2 * 252,
            seed: 11,
            ..SimConfig::default()
        },
    );
    // Thresholds are fitted on the initial window only and then frozen —
    // exactly how a live system discretizes incoming days on the
    // training scale.
    let disc = discretize_market(&market, K, Some(0..WINDOW));
    let stream_db = disc.discretize_more(&market, 0..usize::MAX);
    let n_days = stream_db.num_obs();
    println!(
        "{} tickers, k = {K}, {WINDOW}-day window sliding over {} delta days",
        TICKERS, n_days
    );

    let cfg = ModelConfig {
        gamma_edge: 1.20, // C2
        gamma_hyper: 1.12,
        ..ModelConfig::default()
    };
    let build_start = Instant::now();
    let mut model = AssociationModel::build(&stream_db.slice_obs(0..WINDOW), &cfg).unwrap();
    println!(
        "initial batch build: {} edges in {:.1} ms",
        model.hypergraph().num_edges(),
        build_start.elapsed().as_secs_f64() * 1e3
    );

    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let dominators = |m: &AssociationModel| -> Vec<NodeId> {
        let thr = m.acv_percentile_threshold(0.4).expect("model has edges");
        let filtered = m.filter_by_acv(thr);
        let mut dom =
            set_cover_adaptation(filtered.hypergraph(), &nodes, &SetCoverOptions::default())
                .dominator;
        dom.sort_unstable();
        dom
    };
    let mut dom = dominators(&model);
    println!(
        "day {WINDOW:>4}: initial dominator set has {} leading indicators",
        dom.len()
    );

    let mut row = vec![0 as Value; stream_db.num_attrs()];
    let mut slide_ms = Vec::with_capacity(n_days - WINDOW);
    for day in WINDOW..n_days {
        for (a, v) in row.iter_mut().enumerate() {
            *v = stream_db.value(hypermine::data::AttrId::new(a as u32), day);
        }
        let t = Instant::now();
        model.advance(&row).expect("stream rows are valid");
        slide_ms.push(t.elapsed().as_secs_f64() * 1e3);
        // Re-derive the leading indicators from the slid model.
        let new_dom = dominators(&model);
        let entered = new_dom.iter().filter(|v| !dom.contains(v)).count();
        let left = dom.iter().filter(|v| !new_dom.contains(v)).count();
        dom = new_dom;
        if (day - WINDOW + 1) % 21 == 0 {
            let names: Vec<&str> = dom
                .iter()
                .take(6)
                .map(|&v| model.attr_name(hypermine::core::attr_of(v)))
                .collect();
            println!(
                "day {day:>4}: epoch {:>3}, {} edges, |Dom| {} (+{entered}/-{left} today), \
                 covering {}…",
                model.epoch(),
                model.hypergraph().num_edges(),
                dom.len(),
                names.join(" ")
            );
        }
    }

    // The whole point: the streamed model equals a from-scratch rebuild
    // of its final window, bit for bit.
    let rebuild_start = Instant::now();
    let batch = AssociationModel::build(model.database(), &cfg).unwrap();
    let rebuild = rebuild_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        batch.hypergraph().num_edges(),
        model.hypergraph().num_edges()
    );
    for (id, e) in batch.hypergraph().edges() {
        let o = model.hypergraph().edge(id);
        assert_eq!(e.tail(), o.tail());
        assert_eq!(e.head(), o.head());
        assert_eq!(e.weight().to_bits(), o.weight().to_bits());
    }
    println!(
        "\nstreamed model verified bit-identical to a batch rebuild of the final window"
    );
    let total: f64 = slide_ms.iter().sum();
    let mean = total / slide_ms.len() as f64;
    let mut sorted = slide_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{} slides: mean {:.2} ms, median {:.2} ms, p95 {:.2} ms \
         (first slide incl. state build {:.1} ms); full rebuild {:.1} ms => {:.1}x per slide",
        slide_ms.len(),
        mean,
        sorted[sorted.len() / 2],
        sorted[sorted.len() * 95 / 100],
        slide_ms[0],
        rebuild,
        rebuild / sorted[sorted.len() / 2],
    );
}
