//! Streaming leading indicators, served: a rolling 252-day window over
//! two simulated trading years, advanced one day at a time through the
//! concurrent serving layer.
//!
//! Production framing of Section 5.1.1's flagship workload: every new
//! trading day appends one discretized delta observation, the oldest
//! day retires, and a [`ModelServer`] slides the association model along
//! (bit-identical to re-mining the window from scratch, at a fraction of
//! the cost) and publishes an immutable epoch-tagged [`ModelSnapshot`]
//! after every slide. The leading-indicator (dominator) set is
//! precomputed into each snapshot at publish time, so the daily report
//! is a lock-free read — no set-cover run on the query path. The
//! monthly report shows how the set drifts.
//!
//! ```bash
//! cargo run --release --example streaming_market
//! ```

use hypermine::core::{AssociationModel, ModelConfig};
use hypermine::data::{AttrId, Value};
use hypermine::market::{discretize_market, Market, SimConfig, Universe};
use hypermine::serve::{ModelServer, SnapshotSpec};
use std::time::Instant;

const TICKERS: usize = 40;
const WINDOW: usize = 252; // one trading year of delta observations
const K: u8 = 5; // paper configuration C2

fn main() {
    // Two simulated years of closes -> 503 delta days: one year to fit
    // the initial model, one year to stream through it.
    let market = Market::simulate(
        Universe::sp500(TICKERS),
        &SimConfig {
            n_days: 2 * 252,
            seed: 11,
            ..SimConfig::default()
        },
    );
    // Thresholds are fitted on the initial window only and then frozen —
    // exactly how a live system discretizes incoming days on the
    // training scale.
    let disc = discretize_market(&market, K, Some(0..WINDOW));
    let stream_db = disc.discretize_more(&market, 0..usize::MAX);
    let n_days = stream_db.num_obs();
    println!(
        "{} tickers, k = {K}, {WINDOW}-day window sliding over {} delta days",
        TICKERS, n_days
    );

    let cfg = ModelConfig {
        gamma_edge: 1.20, // C2
        gamma_hyper: 1.12,
        ..ModelConfig::default()
    };
    let build_start = Instant::now();
    let model = AssociationModel::build(&stream_db.slice_obs(0..WINDOW), &cfg).unwrap();
    println!(
        "initial batch build: {} edges in {:.1} ms",
        model.hypergraph().num_edges(),
        build_start.elapsed().as_secs_f64() * 1e3
    );

    // Wrap the model in the serving layer: the server owns the live
    // model (single writer); readers get immutable snapshots with the
    // dominator set, per-head rankings, and association tables already
    // materialized. The spec keeps the top 40% of edges by ACV before
    // the set-cover adaptation — the same derivation the batch pipeline
    // uses for leading indicators. `rule_limit: 0` skips the rule
    // pre-ranking (the one serving index that walks every edge's full
    // table): this report never reads rules, and skipping them keeps
    // the daily publish in the same few-ms band as the slide itself.
    let spec = SnapshotSpec {
        rule_limit: 0,
        ..SnapshotSpec::default()
    };
    let mut server = ModelServer::new(model, spec);
    let mut reader = server.reader();
    let mut dom: Vec<AttrId> = reader.load().known().to_vec();
    println!(
        "day {WINDOW:>4}: initial dominator set has {} leading indicators",
        dom.len()
    );

    let mut row = vec![0 as Value; stream_db.num_attrs()];
    let mut slide_ms = Vec::with_capacity(n_days - WINDOW);
    for day in WINDOW..n_days {
        for (a, v) in row.iter_mut().enumerate() {
            *v = stream_db.value(AttrId::new(a as u32), day);
        }
        // One timed step = slide the model AND publish the refreshed
        // snapshot (serving indexes included) — the full cost of making
        // the new day visible to every reader.
        let t = Instant::now();
        server.advance(&row).expect("stream rows are valid");
        slide_ms.push(t.elapsed().as_secs_f64() * 1e3);
        // The day's leading indicators are a field read on the
        // published snapshot, not a recomputation.
        let snap = reader.load();
        let new_dom = snap.known();
        let entered = new_dom.iter().filter(|v| !dom.contains(v)).count();
        let left = dom.iter().filter(|v| !new_dom.contains(v)).count();
        if (day - WINDOW + 1) % 21 == 0 {
            let names: Vec<&str> = new_dom
                .iter()
                .take(6)
                .map(|&a| snap.attr_name(a))
                .collect();
            println!(
                "day {day:>4}: epoch {:>3}, {} edges, |Dom| {} (+{entered}/-{left} today, \
                 {:.0}% covered), covering {}…",
                snap.epoch(),
                snap.graph().num_edges(),
                new_dom.len(),
                snap.coverage() * 100.0,
                names.join(" ")
            );
        }
        dom = new_dom.to_vec();
    }

    // The whole point: the streamed model equals a from-scratch rebuild
    // of its final window, bit for bit — and so does the snapshot the
    // readers see.
    let rebuild_start = Instant::now();
    let batch = AssociationModel::build(server.model().database(), &cfg).unwrap();
    let rebuild = rebuild_start.elapsed().as_secs_f64() * 1e3;
    let republish_start = Instant::now();
    server.publish();
    let republish = republish_start.elapsed().as_secs_f64() * 1e3;
    let snap = reader.load();
    assert_eq!(batch.hypergraph().num_edges(), snap.graph().num_edges());
    for (id, e) in batch.hypergraph().edges() {
        let o = snap.graph().edge(id);
        assert_eq!(e.tail(), o.tail());
        assert_eq!(e.head(), o.head());
        assert_eq!(e.weight().to_bits(), o.weight().to_bits());
    }
    assert!(snap.verify_digest(), "published snapshot is internally consistent");
    println!(
        "\nserved snapshot verified bit-identical to a batch rebuild of the final window"
    );
    let total: f64 = slide_ms.iter().sum();
    let mean = total / slide_ms.len() as f64;
    let mut sorted = slide_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{} slide+publish steps: mean {:.2} ms, median {:.2} ms, p95 {:.2} ms \
         (first slide incl. state build {:.1} ms); \
         rebuild-and-republish from scratch {:.1} ms => {:.1}x per served day",
        slide_ms.len(),
        mean,
        sorted[sorted.len() / 2],
        sorted[sorted.len() * 95 / 100],
        slide_ms[0],
        rebuild + republish,
        (rebuild + republish) / sorted[sorted.len() / 2],
    );
}
