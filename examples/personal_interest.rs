//! The paper's Personal-Interest database (Tables 3.5–3.6, Example 3.5): a
//! social-network ratings table mined for interest associations and
//! association-based user-interest similarity.
//!
//! ```bash
//! cargo run --example personal_interest
//! ```

use hypermine::core::{AssociationModel, ModelConfig, MvaRule};
use hypermine::data::discretize::{Discretizer, FixedCuts};
use hypermine::data::{AttrId, Database};

fn level(v: u8) -> &'static str {
    match v {
        1 => "l",
        2 => "m",
        _ => "h",
    }
}

fn main() {
    // Table 3.5 — interest ratings (0 = lowest, 10 = highest).
    let raw: [[f64; 4]; 8] = [
        [10.0, 10.0, 3.0, 5.0],
        [7.0, 9.0, 4.0, 6.0],
        [3.0, 1.0, 9.0, 10.0],
        [5.0, 1.0, 10.0, 7.0],
        [9.0, 8.0, 2.0, 6.0],
        [8.0, 10.0, 7.0, 6.0],
        [5.0, 4.0, 6.0, 5.0],
        [8.0, 10.0, 1.0, 8.0],
    ];
    // Table 3.6's cuts: low 0..=3, moderate 4..=7, high 8..=10.
    let cuts = FixedCuts::new(vec![4.0, 8.0]);
    let columns: Vec<Vec<u8>> = (0..4)
        .map(|c| cuts.fit_apply(&raw.iter().map(|r| r[c]).collect::<Vec<_>>()))
        .collect();
    let db = Database::from_columns(
        vec!["Read".into(), "Play".into(), "Music".into(), "Eat".into()],
        3,
        columns,
    )
    .unwrap();

    println!("Discretized Personal-Interest database (Table 3.6):");
    for o in 0..db.num_obs() {
        let row: Vec<&str> = db.attrs().map(|a| level(db.value(a, o))).collect();
        println!("  person {}: {}", o + 1, row.join(" "));
    }

    // The paper's rule: high reading ∧ high playing ⟹ low music interest;
    // Supp = 0.5, Conf = 0.75.
    let rule = MvaRule::new(
        vec![(AttrId::new(0), 3), (AttrId::new(1), 3)],
        vec![(AttrId::new(2), 1)],
    )
    .unwrap();
    println!(
        "\n{}: Supp {:.3} (paper 0.5), Conf {:.3} (paper 0.75)",
        rule.display(&db),
        rule.antecedent_support(&db),
        rule.confidence(&db).unwrap()
    );

    // Association-based similarity between interests: reading and playing
    // should look alike (they predict each other and share predictors),
    // music should be the odd one out.
    let model = AssociationModel::build(&db, &ModelConfig::c1()).unwrap();
    println!("\npairwise association distance (1 = dissimilar):");
    let attrs: Vec<AttrId> = model.attrs().collect();
    print!("        ");
    for &a in &attrs {
        print!("{:>6}", model.attr_name(a));
    }
    println!();
    for &a in &attrs {
        print!("{:>6}: ", model.attr_name(a));
        for &b in &attrs {
            print!("{:>6.2}", model.similarity_distance(a, b));
        }
        println!();
    }
}
