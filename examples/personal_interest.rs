//! The paper's Personal-Interest database (Tables 3.5–3.6, Example 3.5): a
//! social-network ratings table mined for interest associations and
//! association-based user-interest similarity.
//!
//! The raw table, its cuts, and the paper-pinned rule outcomes all come
//! from the `personal_interest` entry of the scenario registry — the
//! same spec the `replication` binary gates — so this example cannot
//! drift from the committed summary.
//!
//! ```bash
//! cargo run --example personal_interest
//! ```

use hypermine::core::{AssociationModel, MvaRule};
use hypermine::data::AttrId;
use hypermine::experiments::registry::{self, Source};
use hypermine::experiments::replicate::paper_database;

fn level(v: u8) -> &'static str {
    match v {
        1 => "l",
        2 => "m",
        _ => "h",
    }
}

fn main() {
    let spec = registry::find("personal_interest").expect("registered scenario");
    let db = paper_database(spec).expect("inline scenario");
    let Source::Inline(table) = spec.source else {
        unreachable!("personal_interest is an inline scenario")
    };

    println!("Discretized Personal-Interest database (Table 3.6):");
    for o in 0..db.num_obs() {
        let row: Vec<&str> = db.attrs().map(|a| level(db.value(a, o))).collect();
        println!("  person {}: {}", o + 1, row.join(" "));
    }

    // The paper's rule: high reading ∧ high playing ⟹ low music interest;
    // Supp = 0.5, Conf = 0.75.
    for check in table.rules {
        let rule = MvaRule::new(
            check
                .antecedent
                .iter()
                .map(|&(a, v)| (AttrId::new(a), v))
                .collect(),
            vec![(AttrId::new(check.consequent.0), check.consequent.1)],
        )
        .unwrap();
        println!(
            "\n{}: Supp {:.3} (paper {}/{}), Conf {:.3} (paper {}/{})",
            rule.display(&db),
            rule.antecedent_support(&db),
            check.support.0,
            check.support.1,
            rule.confidence(&db).unwrap(),
            check.confidence.0,
            check.confidence.1,
        );
    }

    // Association-based similarity between interests: reading and playing
    // should look alike (they predict each other and share predictors),
    // music should be the odd one out.
    let cfg = spec.runs[0].model_config(db.num_attrs());
    let model = AssociationModel::build(&db, &cfg).unwrap();
    println!("\npairwise association distance (1 = dissimilar):");
    let attrs: Vec<AttrId> = model.attrs().collect();
    print!("        ");
    for &a in &attrs {
        print!("{:>6}", model.attr_name(a));
    }
    println!();
    for &a in &attrs {
        print!("{:>6}: ", model.attr_name(a));
        for &b in &attrs {
            print!("{:>6.2}", model.similarity_distance(a, b));
        }
        println!();
    }
}
