//! The paper's Gene database (Tables 3.3–3.4, Example 3.4) and its
//! future-work application (Chapter 6): model gene interactions with an
//! association hypergraph, find co-expressed gene clusters, and predict
//! expression levels of unmeasured genes from a measured subset.
//!
//! ```bash
//! cargo run --example gene_expression
//! ```

use hypermine::core::{
    attr_of, cluster_attributes, node_of, set_cover_adaptation, AssociationClassifier,
    AssociationModel, ModelConfig, MvaRule, SetCoverOptions,
};
use hypermine::data::discretize::{Discretizer, FixedCuts};
use hypermine::data::{AttrId, Database};
use hypermine_hypergraph::NodeId;

/// Expression buckets: ↓ (1) for 0..=333, ↔ (2) for 334..=666, ↑ (3) above.
fn arrows(v: u8) -> &'static str {
    match v {
        1 => "v",
        2 => "-",
        _ => "^",
    }
}

fn main() {
    // Table 3.3 — raw expression values for 4 genes x 8 patients.
    let raw: [[f64; 4]; 8] = [
        [54.23, 66.22, 342.32, 422.21],
        [541.21, 324.21, 165.21, 852.21],
        [321.67, 125.98, 139.43, 71.11],
        [123.87, 95.54, 105.88, 678.65],
        [388.44, 129.33, 135.65, 754.32],
        [399.98, 121.54, 117.55, 719.33],
        [414.33, 134.73, 145.32, 733.22],
        [855.78, 125.93, 155.76, 789.43],
    ];
    // Table 3.4's cuts: ↓ 0..=333, ↔ 334..=666, ↑ 667..=999.
    let cuts = FixedCuts::new(vec![334.0, 667.0]);
    let columns: Vec<Vec<u8>> = (0..4)
        .map(|c| cuts.fit_apply(&raw.iter().map(|r| r[c]).collect::<Vec<_>>()))
        .collect();
    let db = Database::from_columns(
        vec!["G1".into(), "G2".into(), "G3".into(), "G4".into()],
        3,
        columns,
    )
    .unwrap();

    println!("Discretized Gene database (Table 3.4):");
    for o in 0..db.num_obs() {
        let row: Vec<&str> = db.attrs().map(|a| arrows(db.value(a, o))).collect();
        println!("  patient {}: {}", o + 1, row.join(" "));
    }

    // The paper's rule: G2 under ∧ G3 under ⟹ G4 over;
    // Supp = 0.875, Conf = 0.857.
    let rule = MvaRule::new(
        vec![(AttrId::new(1), 1), (AttrId::new(2), 1)],
        vec![(AttrId::new(3), 3)],
    )
    .unwrap();
    println!(
        "\n{}: Supp {:.3} (paper 0.875), Conf {:.3} (paper 0.857)",
        rule.display(&db),
        rule.antecedent_support(&db),
        rule.confidence(&db).unwrap()
    );

    // Chapter 6 problem (1): clusters of similar genes.
    let model = AssociationModel::build(&db, &ModelConfig::c1()).unwrap();
    let attrs: Vec<AttrId> = model.attrs().collect();
    let clusters = cluster_attributes(&model, &attrs, 2, None);
    println!("\ngene clusters (t = 2):");
    for (c, center) in clusters.center_attrs().iter().enumerate() {
        let members: Vec<&str> = clusters
            .cluster_members(c)
            .iter()
            .map(|&a| model.attr_name(a))
            .collect();
        println!("  cluster around {}: {:?}", model.attr_name(*center), members);
    }

    // Chapter 6 problem (2): knowing a leading subset of genes, predict the
    // expression values of the rest.
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let dom = set_cover_adaptation(
        model.hypergraph(),
        &nodes,
        &SetCoverOptions::default(),
    );
    let measured: Vec<AttrId> = dom.dominator.iter().map(|&n| attr_of(n)).collect();
    if measured.is_empty() {
        println!("\nno leading genes found at this toy scale");
        return;
    }
    let targets: Vec<AttrId> = model.attrs().filter(|a| !measured.contains(a)).collect();
    let clf = AssociationClassifier::new(&model, &measured);
    println!(
        "\nmeasuring {:?} predicts the remaining genes:",
        measured
            .iter()
            .map(|&a| model.attr_name(a))
            .collect::<Vec<_>>()
    );
    for &t in &targets {
        let values: Vec<u8> = measured.iter().map(|&a| db.value(a, 0)).collect();
        if let Some(p) = clf.predict(&values, t) {
            println!(
                "  patient 1: {} predicted {} (confidence {:.2}), actual {}",
                model.attr_name(t),
                arrows(p.value),
                p.confidence,
                arrows(db.value(t, 0))
            );
        }
    }
}
