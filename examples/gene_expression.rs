//! The paper's Gene database (Tables 3.3–3.4, Example 3.4) and its
//! future-work application (Chapter 6): model gene interactions with an
//! association hypergraph, find co-expressed gene clusters, and predict
//! expression levels of unmeasured genes from a measured subset.
//!
//! The raw table, its discretization cuts, and the paper-pinned rule
//! outcomes all come from the `gene_expression` entry of the scenario
//! registry — the same spec the `replication` binary gates — so this
//! example cannot drift from the committed summary.
//!
//! ```bash
//! cargo run --example gene_expression
//! ```

use hypermine::core::{
    attr_of, cluster_attributes, node_of, set_cover_adaptation, AssociationClassifier,
    AssociationModel, MvaRule, SetCoverOptions,
};
use hypermine::data::AttrId;
use hypermine::experiments::registry::{self, Source};
use hypermine::experiments::replicate::paper_database;
use hypermine::hypergraph::NodeId;

/// Expression buckets: ↓ (1) for 0..=333, ↔ (2) for 334..=666, ↑ (3) above.
fn arrows(v: u8) -> &'static str {
    match v {
        1 => "v",
        2 => "-",
        _ => "^",
    }
}

fn main() {
    let spec = registry::find("gene_expression").expect("registered scenario");
    let db = paper_database(spec).expect("inline scenario");
    let Source::Inline(table) = spec.source else {
        unreachable!("gene_expression is an inline scenario")
    };

    println!("Discretized Gene database (Table 3.4):");
    for o in 0..db.num_obs() {
        let row: Vec<&str> = db.attrs().map(|a| arrows(db.value(a, o))).collect();
        println!("  patient {}: {}", o + 1, row.join(" "));
    }

    // The paper's rule: G2 under ∧ G3 under ⟹ G4 over;
    // Supp = 0.875, Conf = 0.857.
    for check in table.rules {
        let rule = MvaRule::new(
            check
                .antecedent
                .iter()
                .map(|&(a, v)| (AttrId::new(a), v))
                .collect(),
            vec![(AttrId::new(check.consequent.0), check.consequent.1)],
        )
        .unwrap();
        println!(
            "\n{}: Supp {:.3} (paper {}/{}), Conf {:.3} (paper {}/{})",
            rule.display(&db),
            rule.antecedent_support(&db),
            check.support.0,
            check.support.1,
            rule.confidence(&db).unwrap(),
            check.confidence.0,
            check.confidence.1,
        );
    }

    // Chapter 6 problem (1): clusters of similar genes.
    let cfg = spec.runs[0].model_config(db.num_attrs());
    let model = AssociationModel::build(&db, &cfg).unwrap();
    let attrs: Vec<AttrId> = model.attrs().collect();
    let clusters = cluster_attributes(&model, &attrs, 2, None);
    println!("\ngene clusters (t = 2):");
    for (c, center) in clusters.center_attrs().iter().enumerate() {
        let members: Vec<&str> = clusters
            .cluster_members(c)
            .iter()
            .map(|&a| model.attr_name(a))
            .collect();
        println!("  cluster around {}: {:?}", model.attr_name(*center), members);
    }

    // Chapter 6 problem (2): knowing a leading subset of genes, predict the
    // expression values of the rest.
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let dom = set_cover_adaptation(
        model.hypergraph(),
        &nodes,
        &SetCoverOptions::default(),
    );
    let measured: Vec<AttrId> = dom.dominator.iter().map(|&n| attr_of(n)).collect();
    if measured.is_empty() {
        println!("\nno leading genes found at this toy scale");
        return;
    }
    let targets: Vec<AttrId> = model.attrs().filter(|a| !measured.contains(a)).collect();
    let clf = AssociationClassifier::new(&model, &measured);
    println!(
        "\nmeasuring {:?} predicts the remaining genes:",
        measured
            .iter()
            .map(|&a| model.attr_name(a))
            .collect::<Vec<_>>()
    );
    for &t in &targets {
        let values: Vec<u8> = measured.iter().map(|&a| db.value(a, 0)).collect();
        if let Some(p) = clf.predict(&values, t) {
            println!(
                "  patient 1: {} predicted {} (confidence {:.2}), actual {}",
                model.attr_name(t),
                arrows(p.value),
                p.confidence,
                arrows(db.value(t, 0))
            );
        }
    }
}
