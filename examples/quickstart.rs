//! Quickstart: the full association-mining pipeline in ~60 lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a small S&P-500-style market, builds the association
//! hypergraph (configuration C1), and runs all three applications: top
//! associations, leading indicators, and value prediction.

use hypermine::core::{
    attr_of, dominating_adaptation, node_of, AssociationClassifier, AssociationModel,
    ModelConfig, StopRule,
};
use hypermine::data::AttrId;
use hypermine::market::{discretize_market, Market, SimConfig, Universe};
use hypermine_hypergraph::NodeId;

fn main() {
    // 1. A 40-ticker market over ~2 years of trading days.
    let market = Market::simulate(
        Universe::sp500(40),
        &SimConfig {
            n_days: 500,
            seed: 42,
            ..SimConfig::default()
        },
    );

    // 2. Delta series -> equi-depth discretization into k = 3 buckets.
    let disc = discretize_market(&market, 3, Some(0..400));
    let test_db = disc.discretize_more(&market, 400..499);

    // 3. The association hypergraph (paper configuration C1).
    let model = AssociationModel::build(&disc.database, &ModelConfig::c1()).unwrap();
    let stats = model.stats();
    println!(
        "model: {} directed edges (mean ACV {:.3}), {} 2-to-1 hyperedges (mean ACV {:.3})",
        stats.num_directed_edges,
        stats.mean_acv_directed.unwrap_or(0.0),
        stats.num_hyperedges,
        stats.mean_acv_hyper.unwrap_or(0.0),
    );

    // 4. Strongest association into the first ticker.
    let subject = AttrId::new(0);
    if let Some(e) = model.best_in_hyperedge(subject) {
        let edge = model.hypergraph().edge(e);
        let t1 = model.attr_name(attr_of(edge.tail()[0]));
        let t2 = model.attr_name(attr_of(edge.tail()[1]));
        println!(
            "best predictor of {}: {{{t1}, {t2}}} with ACV {:.3}",
            model.attr_name(subject),
            edge.weight()
        );
    }

    // 5. A leading indicator: dominator over the top-40% edges.
    let threshold = model.acv_percentile_threshold(0.4).unwrap();
    let filtered = model.filter_by_acv(threshold);
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let dom = dominating_adaptation(filtered.hypergraph(), &nodes, StopRule::NoCrossGain);
    let dominator: Vec<AttrId> = dom.dominator.iter().map(|&n| attr_of(n)).collect();
    println!(
        "leading indicator ({} tickers, {:.0}% coverage): {:?}",
        dominator.len(),
        dom.percent_covered() * 100.0,
        dominator
            .iter()
            .map(|&a| model.attr_name(a))
            .collect::<Vec<_>>()
    );

    // 6. Predict everything else out of sample from the indicator alone.
    let targets: Vec<AttrId> = model.attrs().filter(|a| !dominator.contains(a)).collect();
    let clf = AssociationClassifier::new(&filtered, &dominator);
    let eval = clf.evaluate(&test_db, &targets);
    println!(
        "association-based classifier: mean out-of-sample confidence {:.3} over {} targets \
         (chance would be ~0.33)",
        eval.mean_confidence(),
        targets.len()
    );
}
