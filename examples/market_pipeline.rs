//! The full financial-time-series pipeline of Chapter 5, condensed: market
//! simulation → discretization → association hypergraph → degree analysis →
//! similarity clusters → leading indicators → prediction, with the paper's
//! reporting style.
//!
//! ```bash
//! cargo run --release --example market_pipeline
//! ```

use hypermine::core::{
    attr_of, cluster_attributes, dominating_adaptation, node_of, set_cover_adaptation,
    AssociationClassifier, AssociationModel, ModelConfig, SetCoverOptions, StopRule,
};
use hypermine::data::AttrId;
use hypermine::hypergraph::stats::DegreeStats;
use hypermine::market::{discretize_market, Market, SimConfig, Universe};
use hypermine_hypergraph::NodeId;

fn main() {
    let universe = Universe::sp500(80);
    let market = Market::simulate(
        universe,
        &SimConfig {
            n_days: 4 * 252,
            seed: 2026,
            ..SimConfig::default()
        },
    );
    let split = 3 * 252;
    let disc = discretize_market(&market, 3, Some(0..split));
    let test_db = disc.discretize_more(&market, split..market.n_days() - 1);
    let model = AssociationModel::build(&disc.database, &ModelConfig::c1()).unwrap();
    let universe = market.universe();

    // --- Section 5.2-style degree analysis ---
    let degrees = DegreeStats::compute(model.hypergraph());
    println!("top weighted in-degree (most predictable):");
    for (n, d) in degrees.top_by_in_degree(5) {
        let t = universe.ticker(n.index());
        println!("  {} ({}) {:.1}", t.symbol, t.sector, d);
    }
    println!("top weighted out-degree (most predictive):");
    for (n, d) in degrees.top_by_out_degree(5) {
        let t = universe.ticker(n.index());
        println!("  {} ({}) {:.1}", t.symbol, t.sector, d);
    }

    // --- Section 5.3-style clusters ---
    let attrs: Vec<AttrId> = model.attrs().collect();
    let t = universe.used_subsectors();
    let clusters = cluster_attributes(&model, &attrs, t, None);
    let mut sizes = clusters.clustering.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\nclusters: t = {t}, mean diameter {:.2} vs mean distance {:.2}, sizes {:?}…",
        clusters.mean_cluster_diameter(),
        clusters.mean_distance(),
        &sizes[..sizes.len().min(8)]
    );

    // --- Section 5.4-style leading indicators, both algorithms ---
    let threshold = model.acv_percentile_threshold(0.4).unwrap();
    let filtered = model.filter_by_acv(threshold);
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let alg5 = dominating_adaptation(filtered.hypergraph(), &nodes, StopRule::NoCrossGain);
    let alg6 = set_cover_adaptation(filtered.hypergraph(), &nodes, &SetCoverOptions::default());
    println!(
        "\nleading indicators at ACV >= {threshold:.3}: Alg5 |Dom| {} ({:.0}% covered), Alg6 |Dom| {} ({:.0}% covered)",
        alg5.size(),
        alg5.percent_covered() * 100.0,
        alg6.size(),
        alg6.percent_covered() * 100.0,
    );

    // --- Section 5.5-style classification ---
    let dominator: Vec<AttrId> = alg5.dominator.iter().map(|&n| attr_of(n)).collect();
    let targets: Vec<AttrId> = model.attrs().filter(|a| !dominator.contains(a)).collect();
    let clf = AssociationClassifier::new(&filtered, &dominator);
    let in_eval = clf.evaluate(&disc.database, &targets);
    let out_eval = clf.evaluate(&test_db, &targets);
    println!(
        "association-based classifier: in-sample {:.3}, out-of-sample {:.3} (chance ~0.33)",
        in_eval.mean_confidence(),
        out_eval.mean_confidence()
    );
}
