//! The paper's Patient database (Tables 3.1–3.2, Example 3.3): medical
//! records with Age / Cholesterol / Blood-Pressure / Heart-Rate, discretized
//! by `⌊value / 10⌋`, then mined for mva-type association rules.
//!
//! The raw table, its discretizer, and the paper-pinned rule outcomes
//! all come from the `patient_db` entry of the scenario registry — the
//! same spec the `replication` binary gates — so this example cannot
//! drift from the committed summary.
//!
//! ```bash
//! cargo run --example patient_db
//! ```

use hypermine::core::{AssociationModel, MvaRule};
use hypermine::data::{AttrId, Value};
use hypermine::experiments::registry::{self, Source};
use hypermine::experiments::replicate::paper_database;

fn main() {
    let spec = registry::find("patient_db").expect("registered scenario");
    let db = paper_database(spec).expect("inline scenario");
    let Source::Inline(table) = spec.source else {
        unreachable!("patient_db is an inline scenario")
    };

    println!("Discretized Patient database (Table 3.2):");
    for o in 0..db.num_obs() {
        let row: Vec<Value> = db.attrs().map(|a| db.value(a, o)).collect();
        println!("  patient {}: {row:?}", o + 1);
    }

    // The paper's example rule: age in 30-39 ∧ cholesterol in 120-129
    // ⟹ blood-pressure in 130-139; Supp = 0.375, Conf = 0.667.
    for check in table.rules {
        let rule = MvaRule::new(
            check
                .antecedent
                .iter()
                .map(|&(a, v)| (AttrId::new(a), v))
                .collect(),
            vec![(AttrId::new(check.consequent.0), check.consequent.1)],
        )
        .unwrap();
        println!("\nrule {}:", rule.display(&db));
        println!(
            "  Supp(X)      = {:.3} (paper: {}/{})",
            rule.antecedent_support(&db),
            check.support.0,
            check.support.1
        );
        println!(
            "  Conf(X => Y) = {:.3} (paper: {}/{})",
            rule.confidence(&db).unwrap(),
            check.confidence.0,
            check.confidence.1
        );
    }

    // Build the association hypergraph over the patient attributes. With
    // only 8 observations this is a toy model, but it exercises the same
    // machinery as the financial experiments.
    let cfg = spec.runs[0].model_config(db.num_attrs());
    let model = AssociationModel::build(&db, &cfg).unwrap();
    println!(
        "\nassociation hypergraph: {} directed edges, {} 2-to-1 hyperedges",
        model.stats().num_directed_edges,
        model.stats().num_hyperedges
    );
    let tables = model.tables();
    for (id, edge) in model.hypergraph().edges() {
        let t = tables.table(id);
        let tail_names: Vec<&str> = t.tail().iter().map(|&a| model.attr_name(a)).collect();
        println!(
            "  {:?} -> {} (ACV {:.3})",
            tail_names,
            model.attr_name(t.head()),
            edge.weight()
        );
    }
}
