//! The paper's Patient database (Tables 3.1–3.2, Example 3.3): medical
//! records with Age / Cholesterol / Blood-Pressure / Heart-Rate, discretized
//! by `⌊value / 10⌋`, then mined for mva-type association rules.
//!
//! ```bash
//! cargo run --example patient_db
//! ```

use hypermine::core::{AssociationModel, ModelConfig, MvaRule};
use hypermine::data::discretize::discretize_by;
use hypermine::data::{AttrId, Database, Value};

fn main() {
    // Table 3.1 — the raw Patient database.
    let raw: [[f64; 4]; 8] = [
        [25.0, 105.0, 135.0, 75.0],
        [62.0, 160.0, 165.0, 85.0],
        [32.0, 125.0, 139.0, 71.0],
        [12.0, 95.0, 105.0, 67.0],
        [38.0, 129.0, 135.0, 75.0],
        [39.0, 121.0, 117.0, 71.0],
        [41.0, 134.0, 145.0, 73.0],
        [85.0, 125.0, 155.0, 78.0],
    ];
    let names = ["Age", "Cholesterol", "Blood-Pressure", "Heart-Rate"];

    // Table 3.2 — discretize every value to ⌊v/10⌋.
    let columns: Vec<Vec<Value>> = (0..4)
        .map(|c| {
            let col: Vec<f64> = raw.iter().map(|row| row[c]).collect();
            discretize_by(&col, |x| (x / 10.0).floor() as Value)
        })
        .collect();
    let db = Database::from_columns(
        names.iter().map(|s| s.to_string()).collect(),
        16,
        columns,
    )
    .unwrap();

    println!("Discretized Patient database (Table 3.2):");
    for o in 0..db.num_obs() {
        let row: Vec<Value> = db.attrs().map(|a| db.value(a, o)).collect();
        println!("  patient {}: {row:?}", o + 1);
    }

    // The paper's example rule: age in 30-39 ∧ cholesterol in 120-129
    // ⟹ blood-pressure in 130-139; Supp = 0.375, Conf = 0.667.
    let age = AttrId::new(0);
    let chol = AttrId::new(1);
    let bp = AttrId::new(2);
    let rule = MvaRule::new(vec![(age, 3), (chol, 12)], vec![(bp, 13)]).unwrap();
    println!("\nrule {}:", rule.display(&db));
    println!("  Supp(X)      = {:.3} (paper: 0.375)", rule.antecedent_support(&db));
    println!(
        "  Conf(X => Y) = {:.3} (paper: 0.667)",
        rule.confidence(&db).unwrap()
    );

    // Build the association hypergraph over the patient attributes. With
    // only 8 observations this is a toy model, but it exercises the same
    // machinery as the financial experiments.
    let model = AssociationModel::build(&db, &ModelConfig::c1()).unwrap();
    println!(
        "\nassociation hypergraph: {} directed edges, {} 2-to-1 hyperedges",
        model.stats().num_directed_edges,
        model.stats().num_hyperedges
    );
    let tables = model.tables();
    for (id, edge) in model.hypergraph().edges() {
        let t = tables.table(id);
        let tail_names: Vec<&str> = t.tail().iter().map(|&a| model.attr_name(a)).collect();
        println!(
            "  {:?} -> {} (ACV {:.3})",
            tail_names,
            model.attr_name(t.head()),
            edge.weight()
        );
    }
}
