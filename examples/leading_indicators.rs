//! Leading indicators in depth: Algorithms 5 and 6, the effect of
//! Enhancements 1 and 2, stop rules, and ACV thresholds.
//!
//! ```bash
//! cargo run --release --example leading_indicators
//! ```

use hypermine::core::{
    dominating_adaptation, is_dominator, node_of, set_cover_adaptation, AssociationModel,
    ModelConfig, SetCoverOptions, StopRule,
};
use hypermine::market::{discretize_market, Market, SimConfig, Universe};
use hypermine_hypergraph::NodeId;

fn main() {
    let market = Market::simulate(
        Universe::sp500(60),
        &SimConfig {
            n_days: 3 * 252,
            seed: 99,
            ..SimConfig::default()
        },
    );
    let disc = discretize_market(&market, 3, None);
    let model = AssociationModel::build(&disc.database, &ModelConfig::c1()).unwrap();
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();

    println!("threshold sweep (top X% of edges by ACV):");
    println!("  top%   thr    Alg5 |Dom| cov%   Alg6 |Dom| cov%");
    for fraction in [0.6, 0.4, 0.3, 0.2, 0.1] {
        let thr = model.acv_percentile_threshold(fraction).unwrap();
        let filtered = model.filter_by_acv(thr);
        let a5 = dominating_adaptation(filtered.hypergraph(), &nodes, StopRule::NoCrossGain);
        let a6 = set_cover_adaptation(filtered.hypergraph(), &nodes, &SetCoverOptions::default());
        println!(
            "  {:>3.0}%  {:.3}   {:>4} {:>6.1}%    {:>4} {:>6.1}%",
            fraction * 100.0,
            thr,
            a5.size(),
            a5.percent_covered() * 100.0,
            a6.size(),
            a6.percent_covered() * 100.0,
        );
    }

    // Enhancements ablation on one filtered graph.
    let thr = model.acv_percentile_threshold(0.4).unwrap();
    let filtered = model.filter_by_acv(thr);
    println!("\nAlgorithm 6 enhancement ablation (top 40%):");
    for (e1, e2) in [(false, false), (true, false), (false, true), (true, true)] {
        let opts = SetCoverOptions {
            stop: StopRule::NoCrossGain,
            enhancement1: e1,
            enhancement2: e2,
        };
        let r = set_cover_adaptation(filtered.hypergraph(), &nodes, &opts);
        println!(
            "  enh1={} enh2={}: |Dom| {} covering {:.1}% in {} iterations",
            e1 as u8,
            e2 as u8,
            r.size(),
            r.percent_covered() * 100.0,
            r.iterations
        );
    }

    // Stop rules: the literal pseudocode absorbs isolated nodes.
    println!("\nstop rules (Algorithm 5, top 40%):");
    for stop in [StopRule::NoCrossGain, StopRule::FullCover] {
        let r = dominating_adaptation(filtered.hypergraph(), &nodes, stop);
        println!(
            "  {:?}: |Dom| {} covering {:.1}%",
            stop,
            r.size(),
            r.percent_covered() * 100.0
        );
        // The result always satisfies Definition 4.1 on what it covers.
        let covered: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| r.covered[n.index()])
            .collect();
        assert!(is_dominator(filtered.hypergraph(), &covered, &r.dominator));
    }
}
