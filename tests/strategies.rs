//! Cross-validation of the two counting strategies: `Bitset`, `ObsMajor`,
//! and the naive recount must agree — bit for bit — on random databases
//! across the k/thread matrix, and construction must be deterministic in
//! edge ids at every thread count (both passes run parallel).

use hypermine::core::{
    AssociationModel, CountStrategy, CountingEngine, HeadCounter, KernelPath, ModelConfig,
    SimdPolicy,
};
use hypermine::data::{AttrId, Database, PairBuckets};
use proptest::prelude::*;

/// Random database over `k ∈ {2, 3, 5, 8}` — the paper's C1/C2 settings
/// plus the large-k regime the observation-major sweep targets. Roughly a
/// quarter of the columns are forced constant, so pair rows with a single
/// touched counter slot (the dirty list's minimal case) show up routinely.
fn db_with_k() -> impl Strategy<Value = Database> {
    (2usize..=5, 5usize..=60, 0usize..4).prop_flat_map(|(n_attrs, n_obs, k_idx)| {
        let k = [2u8, 3, 5, 8][k_idx];
        (
            proptest::collection::vec(
                proptest::collection::vec(1..=k, n_obs),
                n_attrs,
            ),
            proptest::collection::vec(0u8..4, n_attrs),
        )
            .prop_map(move |(mut cols, const_mask)| {
                for (col, &mask) in cols.iter_mut().zip(&const_mask) {
                    if mask == 0 {
                        let v = col[0];
                        col.fill(v);
                    }
                }
                Database::from_columns(
                    (0..cols.len()).map(|i| format!("A{i}")).collect(),
                    k,
                    cols,
                )
                .expect("generated values are in range")
            })
    })
}

fn build(db: &Database, strategy: CountStrategy, threads: usize) -> AssociationModel {
    AssociationModel::build(
        db,
        &ModelConfig {
            strategy,
            threads,
            ..ModelConfig::default()
        },
    )
    .expect("paper gammas are valid")
}

fn assert_identical(a: &AssociationModel, b: &AssociationModel, what: &str) {
    assert_eq!(
        a.hypergraph().num_edges(),
        b.hypergraph().num_edges(),
        "{what}: edge count"
    );
    for (id, e) in a.hypergraph().edges() {
        let other = b.hypergraph().edge(id);
        assert_eq!(e.tail(), other.tail(), "{what}: tail of {id:?}");
        assert_eq!(e.head(), other.head(), "{what}: head of {id:?}");
        assert_eq!(
            e.weight().to_bits(),
            other.weight().to_bits(),
            "{what}: ACV of {id:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full strategy × thread matrix produces one identical model:
    /// same edge ids, same tails/heads, bit-identical ACVs.
    #[test]
    fn strategy_matrix_is_bit_identical(db in db_with_k()) {
        let reference = build(&db, CountStrategy::Bitset, 1);
        for strategy in [CountStrategy::Bitset, CountStrategy::ObsMajor, CountStrategy::Auto] {
            for threads in [1usize, 3] {
                let m = build(&db, strategy, threads);
                assert_identical(
                    &m,
                    &reference,
                    &format!("{strategy:?} x {threads} threads vs Bitset x 1"),
                );
            }
        }
    }

    /// Both fast sweeps agree with the naive (bitset-free) recount on every
    /// directed edge and 2-to-1 hyperedge ACV.
    #[test]
    fn sweeps_match_naive_recount(db in db_with_k()) {
        let engine = CountingEngine::new(&db);
        let attrs: Vec<AttrId> = db.attrs().collect();
        let mut counter = HeadCounter::new(db.num_attrs(), db.k());
        for &t in &attrs {
            engine.edge_acv_all_heads(t, &mut counter);
            for &h in &attrs {
                if h == t {
                    continue;
                }
                let naive = engine.naive_table(&[t], h).acv();
                prop_assert_eq!(engine.edge_acv(t, h).to_bits(), naive.to_bits());
                prop_assert_eq!(counter.acv(h).to_bits(), naive.to_bits());
            }
        }
        if attrs.len() >= 3 {
            let mut buckets = PairBuckets::new();
            for (i, &a) in attrs.iter().enumerate() {
                for &b in &attrs[i + 1..] {
                    let pair = engine.pair_rows(a, b);
                    engine.bucket_pair(a, b, &mut buckets);
                    engine.hyper_acv_all_heads(&buckets, &mut counter);
                    for &h in &attrs {
                        if h == a || h == b {
                            continue;
                        }
                        let naive = engine.naive_table(&[a, b], h).acv();
                        prop_assert_eq!(engine.hyper_acv(&pair, h).to_bits(), naive.to_bits());
                        prop_assert_eq!(counter.acv(h).to_bits(), naive.to_bits());
                    }
                }
            }
        }
    }
}

/// All-constant columns: every pair sweep touches exactly one `(v_a, v_b)`
/// bucket and one counter slot per head — the dirty list's minimal case —
/// and the whole strategy × thread matrix must still agree bit for bit,
/// down to the k = 2 minimum.
#[test]
fn all_constant_columns_are_bit_identical_across_strategies() {
    for k in [2u8, 3, 5, 8] {
        let n_attrs = 5usize;
        let cols: Vec<Vec<u8>> = (0..n_attrs)
            .map(|a| vec![(a % k as usize + 1) as u8; 30])
            .collect();
        let db = Database::from_columns(
            (0..n_attrs).map(|i| format!("A{i}")).collect(),
            k,
            cols,
        )
        .unwrap();
        // Cross-check the sweeps against the naive recount directly (the
        // model keeps no edges here — constant heads have baseline 1).
        let engine = CountingEngine::new(&db);
        let attrs: Vec<AttrId> = db.attrs().collect();
        let mut counter = HeadCounter::new(db.num_attrs(), db.k());
        let mut buckets = PairBuckets::new();
        for (i, &a) in attrs.iter().enumerate() {
            for &b in &attrs[i + 1..] {
                engine.bucket_pair(a, b, &mut buckets);
                engine.hyper_acv_all_heads(&buckets, &mut counter);
                for &h in &attrs {
                    if h == a || h == b {
                        continue;
                    }
                    let naive = engine.naive_table(&[a, b], h).acv();
                    assert_eq!(
                        counter.acv(h).to_bits(),
                        naive.to_bits(),
                        "k = {k}, pair ({a:?}, {b:?}) -> {h:?}"
                    );
                    assert_eq!(counter.acv(h), 1.0);
                }
            }
        }
        let reference = build(&db, CountStrategy::Bitset, 1);
        for strategy in [CountStrategy::Bitset, CountStrategy::ObsMajor, CountStrategy::Auto] {
            for threads in [1usize, 3] {
                let m = build(&db, strategy, threads);
                assert_identical(
                    &m,
                    &reference,
                    &format!("constant columns, k = {k}, {strategy:?} x {threads}"),
                );
            }
        }
    }
}

/// Wide-attribute fixture: n = 128 (every earlier suite stopped at
/// n ≈ 40), deterministic mixed-correlation columns with a handful of
/// constant ones. The whole strategy × thread matrix — and therefore the
/// blocked flat u16 kernels the observation-major path takes at this
/// width — must agree bit for bit. Gammas are raised so the kept-edge
/// set stays small enough for a debug-mode run; the counting sweeps
/// still evaluate every one of the ~1M (pair, head) candidates.
#[test]
fn wide_attribute_fixture_is_bit_identical_across_strategies() {
    let n_attrs = 128usize;
    let n_obs = 40usize;
    let k = 3u8;
    let cols: Vec<Vec<u8>> = (0..n_attrs)
        .map(|a| {
            (0..n_obs)
                .map(|o| match a % 5 {
                    // A correlated family, shifted copies, a constant
                    // column, and two pseudo-random stripes.
                    0 => (o % 3 + 1) as u8,
                    1 => ((o + a / 5) % 3 + 1) as u8,
                    2 => 2u8,
                    3 => ((o * 7 + a * 13) % 3 + 1) as u8,
                    _ => ((o / 2 + a) % 3 + 1) as u8,
                })
                .collect()
        })
        .collect();
    let db = Database::from_columns(
        (0..n_attrs).map(|i| format!("A{i}")).collect(),
        k,
        cols,
    )
    .unwrap();
    let cfg = |strategy, threads| ModelConfig {
        strategy,
        threads,
        gamma_edge: 1.3,
        gamma_hyper: 1.25,
        ..ModelConfig::default()
    };
    let reference =
        AssociationModel::build(&db, &cfg(CountStrategy::Bitset, 1)).unwrap();
    assert!(
        reference.hypergraph().num_edges() > 0,
        "fixture keeps some edges"
    );
    for (strategy, threads) in [
        (CountStrategy::ObsMajor, 1),
        (CountStrategy::ObsMajor, 3),
        (CountStrategy::Auto, 1),
        (CountStrategy::Auto, 3),
    ] {
        let m = AssociationModel::build(&db, &cfg(strategy, threads)).unwrap();
        assert_identical(
            &m,
            &reference,
            &format!("n=128 {strategy:?} x{threads} vs Bitset x1"),
        );
    }
}

/// Beyond one head tile: at `n · stride > 8192` counter lanes the flat
/// dense bump runs blocked over several head tiles. A thin database with
/// thousands of attributes exercises the multi-tile path cheaply; every
/// ACV must still match the naive recount.
#[test]
fn multi_tile_flat_sweeps_match_naive() {
    let n_attrs = 2400usize; // stride 4 at k=3 -> 9600 lanes, two tiles
    let n_obs = 18usize;
    let k = 3u8;
    // Even columns are constant: any pair over two of them puts all 18
    // observations into one (v_a, v_b) row — deep past the exact small-c
    // folds, so the blocked flat bump walks every head tile. Odd columns
    // vary, covering mixed-density rows.
    let cols: Vec<Vec<u8>> = (0..n_attrs)
        .map(|a| {
            (0..n_obs)
                .map(|o| {
                    if a % 2 == 0 {
                        (a % 3 + 1) as u8
                    } else {
                        ((o * 7 + a) % 3 + 1) as u8
                    }
                })
                .collect()
        })
        .collect();
    let db = Database::from_columns(
        (0..n_attrs).map(|i| format!("A{i}")).collect(),
        k,
        cols,
    )
    .unwrap();
    let engine = CountingEngine::new(&db);
    let mut counter = HeadCounter::new(db.num_attrs(), db.k());
    let mut buckets = PairBuckets::new();
    // A handful of pairs and tails is enough — each sweep crosses every
    // tile boundary for every dense row.
    let probe: Vec<u32> = vec![0, 1, 1199, 2399];
    for &t in &probe {
        let t = AttrId::new(t);
        engine.edge_acv_all_heads(t, &mut counter);
        for &h in &[7u32, 1200, 2398] {
            let h = AttrId::new(h);
            if h == t {
                continue;
            }
            let naive = engine.naive_table(&[t], h).acv();
            assert_eq!(counter.acv(h).to_bits(), naive.to_bits(), "{t:?} -> {h:?}");
        }
    }
    for (a, b) in [(0u32, 2u32), (0, 1), (5, 2398), (1199, 1200)] {
        let (a, b) = (AttrId::new(a), AttrId::new(b));
        engine.bucket_pair(a, b, &mut buckets);
        engine.hyper_acv_all_heads(&buckets, &mut counter);
        for &h in &[3u32, 1201, 2397] {
            let h = AttrId::new(h);
            if h == a || h == b {
                continue;
            }
            let naive = engine.naive_table(&[a, b], h).acv();
            assert_eq!(
                counter.acv(h).to_bits(),
                naive.to_bits(),
                "({a:?},{b:?}) -> {h:?}"
            );
        }
    }
}

/// Columns of the wide kernel-tier fixtures: a correlated family,
/// shifted copies, a constant column, and two pseudo-random stripes.
fn wide_fixture_db(n_attrs: usize, n_obs: usize) -> Database {
    wide_fixture_db_k(n_attrs, n_obs, 3)
}

/// The same column families at an arbitrary value-domain size `k` —
/// the SIMD matrix below sweeps k through the vertical kernel's whole
/// eligibility range and past it (k = 16 declines to the fold tier).
fn wide_fixture_db_k(n_attrs: usize, n_obs: usize, k: u8) -> Database {
    let ku = k as usize;
    let cols: Vec<Vec<u8>> = (0..n_attrs)
        .map(|a| {
            (0..n_obs)
                .map(|o| match a % 5 {
                    0 => (o % ku + 1) as u8,
                    1 => ((o + a / 5) % ku + 1) as u8,
                    2 => 2u8,
                    3 => ((o * 7 + a * 13) % ku + 1) as u8,
                    _ => ((o / 2 + a) % ku + 1) as u8,
                })
                .collect()
        })
        .collect();
    Database::from_columns(
        (0..n_attrs).map(|i| format!("A{i}")).collect(),
        k,
        cols,
    )
    .unwrap()
}

/// Kernel-tier matrix: the u16 flat, u32 wide flat, and segmented
/// byte-walk kernels must produce bit-identical models through **full
/// builds** across the tier × thread matrix at n = 40 (single head
/// tile) and n = 128 (multi-tile). The cap rides on
/// `ModelConfig::kernel_cap`, so the forced tier flows through both
/// construction passes exactly as it would for a database that
/// genuinely outgrew the u16 caps. The strategy is pinned to `ObsMajor`
/// so the dense kernels actually run (under `Auto` these dimensions can
/// resolve to `Bitset`, which has no kernel tiers), and the
/// unrestricted `Bitset` build is the reference — covering the
/// Bitset × tier axis of the matrix in the same sweep. (n = 500
/// full builds are debug-prohibitive here; that width is tier-swept at
/// the engine level below and build-tested in release by the
/// `perf_summary` wide fixture.)
#[test]
fn kernel_tiers_are_bit_identical_through_model_builds() {
    for &(n_attrs, n_obs) in &[(40usize, 60usize), (128, 40)] {
        let db = wide_fixture_db(n_attrs, n_obs);
        let cfg = |cap, strategy, threads| ModelConfig {
            kernel_cap: cap,
            strategy,
            threads,
            gamma_edge: 1.3,
            gamma_hyper: 1.25,
            ..ModelConfig::default()
        };
        let reference =
            AssociationModel::build(&db, &cfg(KernelPath::FlatU16, CountStrategy::Bitset, 1))
                .unwrap();
        assert!(
            reference.hypergraph().num_edges() > 0,
            "n={n_attrs} fixture keeps some edges"
        );
        assert_eq!(reference.kernel_path(), KernelPath::FlatU16);
        for cap in [
            KernelPath::FlatU16,
            KernelPath::FlatU32,
            KernelPath::Segmented,
        ] {
            for threads in [1usize, 3] {
                let m = AssociationModel::build(&db, &cfg(cap, CountStrategy::ObsMajor, threads))
                    .unwrap();
                assert_eq!(m.kernel_path(), cap, "forced tier is the reported tier");
                assert_identical(
                    &m,
                    &reference,
                    &format!("n={n_attrs} {cap:?} x{threads} vs Bitset/FlatU16 x1"),
                );
            }
        }
    }
}

/// n = 500 — the CI wide fixture's width — tier-swept at the engine
/// level (full debug-mode builds at this width cost minutes; the
/// release-mode `perf_summary` wide fixture builds it for real). Every
/// tier must agree bit for bit with the others and with the naive
/// recount on sampled tails, pairs, and heads spanning both head-tile
/// boundaries.
#[test]
fn kernel_tiers_agree_at_the_wide_fixture_width() {
    let db = wide_fixture_db(500, 24);
    let caps = [
        KernelPath::FlatU16,
        KernelPath::FlatU32,
        KernelPath::Segmented,
    ];
    let engines: Vec<CountingEngine> = caps
        .iter()
        .map(|&cap| {
            let mut e = CountingEngine::new(&db);
            e.restrict_kernel(cap);
            assert_eq!(e.kernel_path(), cap);
            e
        })
        .collect();
    let mut counter = HeadCounter::new(db.num_attrs(), db.k());
    let heads: Vec<AttrId> = [3u32, 77, 250, 499].map(AttrId::new).into();
    for t in [0u32, 1, 250, 499].map(AttrId::new) {
        let mut per_cap = Vec::new();
        let probe: Vec<AttrId> = heads.iter().copied().filter(|&h| h != t).collect();
        for e in &engines {
            e.edge_acv_all_heads(t, &mut counter);
            per_cap.push(
                probe
                    .iter()
                    .map(|&h| counter.acv(h).to_bits())
                    .collect::<Vec<u64>>(),
            );
        }
        for (got, cap) in per_cap.iter().zip(caps) {
            assert_eq!(got, &per_cap[0], "pass 1 tail {t:?}, {cap:?} vs FlatU16");
        }
        for (&h, &bits) in probe.iter().zip(&per_cap[0]) {
            let naive = engines[0].naive_table(&[t], h).acv();
            assert_eq!(bits, naive.to_bits(), "pass 1 {t:?} -> {h:?} vs naive");
        }
    }
    let mut buckets = PairBuckets::new();
    for (a, b) in [(0u32, 1u32), (0, 2), (5, 499), (249, 250)] {
        let (a, b) = (AttrId::new(a), AttrId::new(b));
        let mut per_cap = Vec::new();
        let probe: Vec<AttrId> = heads
            .iter()
            .copied()
            .filter(|&h| h != a && h != b)
            .collect();
        for e in &engines {
            e.bucket_pair(a, b, &mut buckets);
            e.hyper_acv_all_heads(&buckets, &mut counter);
            per_cap.push(
                probe
                    .iter()
                    .map(|&h| counter.acv(h).to_bits())
                    .collect::<Vec<u64>>(),
            );
        }
        for (got, cap) in per_cap.iter().zip(caps) {
            assert_eq!(got, &per_cap[0], "pass 2 pair ({a:?},{b:?}), {cap:?}");
        }
        for (&h, &bits) in probe.iter().zip(&per_cap[0]) {
            let naive = engines[0].naive_table(&[a, b], h).acv();
            assert_eq!(bits, naive.to_bits(), "pass 2 ({a:?},{b:?}) -> {h:?}");
        }
    }
}

/// SIMD bit-identity matrix: models built under `SimdPolicy::Auto`
/// (whatever level runtime detection engages — AVX2, NEON, or scalar)
/// must be bit-identical to `ForceScalar` builds across both flat
/// kernel tiers, every thread count the perf tier reports, and a k
/// sweep spanning the vertical kernel's whole eligibility range
/// (k ∈ {3, 5, 8}) plus a width past it (k = 16, which declines to the
/// fold tier — on hosts without AVX2/NEON the two builds run the same
/// scalar code and the assertion is trivially true, which is exactly
/// the portable-fallback contract). n = 40 runs the single-head-tile
/// path, n = 128 the multi-tile one.
#[test]
fn simd_policies_are_bit_identical_through_model_builds() {
    for &(n_attrs, n_obs) in &[(40usize, 60usize), (128, 40)] {
        for k in [3u8, 5, 8, 16] {
            let db = wide_fixture_db_k(n_attrs, n_obs, k);
            let cfg = |cap, simd, threads| ModelConfig {
                kernel_cap: cap,
                simd,
                strategy: CountStrategy::ObsMajor,
                threads,
                gamma_edge: 1.3,
                gamma_hyper: 1.25,
                ..ModelConfig::default()
            };
            for cap in [KernelPath::FlatU16, KernelPath::FlatU32] {
                let reference =
                    AssociationModel::build(&db, &cfg(cap, SimdPolicy::ForceScalar, 1))
                        .unwrap();
                assert!(
                    reference.hypergraph().num_edges() > 0,
                    "n={n_attrs} k={k} fixture keeps some edges"
                );
                for threads in [1usize, 4, 8] {
                    let m = AssociationModel::build(&db, &cfg(cap, SimdPolicy::Auto, threads))
                        .unwrap();
                    assert_eq!(m.kernel_path(), cap);
                    assert_identical(
                        &m,
                        &reference,
                        &format!("n={n_attrs} k={k} {cap:?} Auto x{threads} vs ForceScalar x1"),
                    );
                }
            }
        }
    }
}

/// n = 500 — the CI wide fixture's width — SIMD-swept at the engine
/// level (full debug-mode builds at this width cost minutes, as with
/// the kernel-tier sweep above). The `Auto` engine must agree bit for
/// bit with the `ForceScalar` engine and with the naive recount on
/// sampled tails, pairs, and heads spanning both head-tile boundaries.
#[test]
fn simd_policies_agree_at_the_wide_fixture_width() {
    let db = wide_fixture_db(500, 24);
    let policies = [SimdPolicy::ForceScalar, SimdPolicy::Auto];
    let engines: Vec<CountingEngine> = policies
        .iter()
        .map(|&policy| {
            let mut e = CountingEngine::new(&db);
            e.set_simd_policy(policy);
            e
        })
        .collect();
    let mut counter = HeadCounter::new(db.num_attrs(), db.k());
    let heads: Vec<AttrId> = [3u32, 77, 250, 499].map(AttrId::new).into();
    for t in [0u32, 1, 250, 499].map(AttrId::new) {
        let probe: Vec<AttrId> = heads.iter().copied().filter(|&h| h != t).collect();
        let mut per_policy = Vec::new();
        for e in &engines {
            e.edge_acv_all_heads(t, &mut counter);
            per_policy.push(
                probe
                    .iter()
                    .map(|&h| counter.acv(h).to_bits())
                    .collect::<Vec<u64>>(),
            );
        }
        assert_eq!(per_policy[1], per_policy[0], "pass 1 tail {t:?}, Auto vs ForceScalar");
        for (&h, &bits) in probe.iter().zip(&per_policy[0]) {
            let naive = engines[0].naive_table(&[t], h).acv();
            assert_eq!(bits, naive.to_bits(), "pass 1 {t:?} -> {h:?} vs naive");
        }
    }
    let mut buckets = PairBuckets::new();
    for (a, b) in [(0u32, 1u32), (0, 2), (5, 499), (249, 250)] {
        let (a, b) = (AttrId::new(a), AttrId::new(b));
        let probe: Vec<AttrId> = heads
            .iter()
            .copied()
            .filter(|&h| h != a && h != b)
            .collect();
        let mut per_policy = Vec::new();
        for e in &engines {
            e.bucket_pair(a, b, &mut buckets);
            e.hyper_acv_all_heads(&buckets, &mut counter);
            per_policy.push(
                probe
                    .iter()
                    .map(|&h| counter.acv(h).to_bits())
                    .collect::<Vec<u64>>(),
            );
        }
        assert_eq!(
            per_policy[1], per_policy[0],
            "pass 2 pair ({a:?},{b:?}), Auto vs ForceScalar"
        );
        for (&h, &bits) in probe.iter().zip(&per_policy[0]) {
            let naive = engines[0].naive_table(&[a, b], h).acv();
            assert_eq!(bits, naive.to_bits(), "pass 2 ({a:?},{b:?}) -> {h:?}");
        }
    }
}

/// Pass-1 parallelization regression: directed-edge ids must be assigned in
/// the same tail-major order at every thread count (pass 2 was already
/// parallel; pass 1 newly runs through the same chunking harness).
#[test]
fn pass_1_edge_ids_are_deterministic_across_thread_counts() {
    // Strongly associated attribute family so pass 1 keeps many edges.
    let n_attrs = 9;
    let n_obs = 120;
    let cols: Vec<Vec<u8>> = (0..n_attrs)
        .map(|a| {
            (0..n_obs)
                .map(|o| ((o + a / 3) % 3 + 1) as u8)
                .collect()
        })
        .collect();
    let db = Database::from_columns(
        (0..n_attrs).map(|i| format!("A{i}")).collect(),
        3,
        cols,
    )
    .unwrap();
    let cfg = ModelConfig {
        with_hyperedges: false, // isolate pass 1
        threads: 1,
        ..ModelConfig::default()
    };
    let reference = AssociationModel::build(&db, &cfg).unwrap();
    assert!(
        reference.hypergraph().num_edges() >= n_attrs,
        "fixture keeps plenty of directed edges"
    );
    for threads in [2usize, 3, 4, 9, 16] {
        for strategy in [CountStrategy::Bitset, CountStrategy::ObsMajor] {
            let m = AssociationModel::build(
                &db,
                &ModelConfig {
                    threads,
                    strategy,
                    ..cfg.clone()
                },
            )
            .unwrap();
            assert_identical(
                &m,
                &reference,
                &format!("pass 1 with {threads} threads, {strategy:?}"),
            );
        }
    }
}
