//! End-to-end integration tests spanning every crate: market simulation →
//! discretization → association hypergraph → similarity/clustering →
//! leading indicators → classification, plus the ML baselines on the same
//! data.

use hypermine::core::{
    attr_of, dominating_adaptation, is_dominator, node_of, set_cover_adaptation,
    AssociationClassifier, AssociationModel, ModelConfig, SetCoverOptions, StopRule,
};
use hypermine::data::AttrId;
use hypermine::market::{discretize_market, Market, SimConfig, Universe};
use hypermine::ml::{accuracy, MultiClassPerceptron, TabularDataset};
use hypermine_hypergraph::NodeId;

fn market() -> Market {
    Market::simulate(
        Universe::sp500(40),
        &SimConfig {
            n_days: 6 * 252,
            seed: 77,
            ..SimConfig::default()
        },
    )
}

#[test]
fn full_pipeline_beats_chance_out_of_sample() {
    let m = market();
    let split = 5 * 252;
    let disc = discretize_market(&m, 3, Some(0..split));
    let test_db = disc.discretize_more(&m, split..m.n_days() - 1);
    let model = AssociationModel::build(&disc.database, &ModelConfig::c1()).unwrap();

    // Leading indicator on the top-40% graph.
    let thr = model.acv_percentile_threshold(0.4).unwrap();
    let filtered = model.filter_by_acv(thr);
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let dom = dominating_adaptation(filtered.hypergraph(), &nodes, StopRule::NoCrossGain);
    assert!(!dom.dominator.is_empty());
    assert!(dom.percent_covered() > 0.5, "coverage {}", dom.percent_covered());

    let dominator: Vec<AttrId> = dom.dominator.iter().map(|&n| attr_of(n)).collect();
    let targets: Vec<AttrId> = model.attrs().filter(|a| !dominator.contains(a)).collect();
    let clf = AssociationClassifier::new(&filtered, &dominator);
    let out = clf.evaluate(&test_db, &targets).mean_confidence();
    // Equi-depth k = 3 buckets: chance is 1/3.
    assert!(out > 0.40, "out-of-sample confidence {out}");
}

#[test]
fn both_dominator_algorithms_agree_on_validity() {
    let m = market();
    let disc = discretize_market(&m, 3, None);
    let model = AssociationModel::build(&disc.database, &ModelConfig::c1()).unwrap();
    let thr = model.acv_percentile_threshold(0.3).unwrap();
    let filtered = model.filter_by_acv(thr);
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();

    for dominator in [
        dominating_adaptation(filtered.hypergraph(), &nodes, StopRule::NoCrossGain).dominator,
        set_cover_adaptation(filtered.hypergraph(), &nodes, &SetCoverOptions::default())
            .dominator,
    ] {
        assert!(!dominator.is_empty());
        // Whatever each algorithm marked covered really is dominated.
        let covered = hypermine_hypergraph::one_step_cover(filtered.hypergraph(), &dominator);
        let covered_nodes: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| covered[n.index()])
            .collect();
        assert!(is_dominator(
            filtered.hypergraph(),
            &covered_nodes,
            &dominator
        ));
    }
}

#[test]
fn classifier_beats_majority_baseline_in_sample() {
    let m = market();
    let disc = discretize_market(&m, 3, None);
    let model = AssociationModel::build(&disc.database, &ModelConfig::c1()).unwrap();
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let dom = dominating_adaptation(model.hypergraph(), &nodes, StopRule::NoCrossGain);
    let dominator: Vec<AttrId> = dom.dominator.iter().map(|&n| attr_of(n)).collect();
    let targets: Vec<AttrId> = model
        .attrs()
        .filter(|a| !dominator.contains(a))
        .take(10)
        .collect();
    let clf = AssociationClassifier::new(&model, &dominator);
    let eval = clf.evaluate(&disc.database, &targets);
    // Majority baseline under equi-depth terciles is ~1/3.
    assert!(
        eval.mean_confidence() > 0.38,
        "in-sample {}",
        eval.mean_confidence()
    );
}

#[test]
fn ml_baselines_runnable_on_market_data() {
    // Cross-crate check: one-hot encodings built from the discretized
    // market feed the perceptron, which must beat chance on a correlated
    // target in sample.
    let m = market();
    let disc = discretize_market(&m, 3, None);
    let db = &disc.database;
    // Predict ticker 1 from tickers 2..6 (same-sector neighbours likely
    // correlate; in-sample fit only).
    let features: Vec<AttrId> = (2..7).map(AttrId::new).collect();
    let target = AttrId::new(1);
    let ds = TabularDataset::one_hot_from_db(db, &features, target);
    let p = MultiClassPerceptron::train(&ds, 30);
    let acc = accuracy(&ds, |x| p.predict(x));
    assert!(acc > 0.34, "perceptron in-sample accuracy {acc}");
}

#[test]
fn filtered_models_preserve_tables_and_names() {
    let m = market();
    let disc = discretize_market(&m, 3, Some(0..400));
    let model = AssociationModel::build(&disc.database, &ModelConfig::c1()).unwrap();
    let thr = model.acv_percentile_threshold(0.5).unwrap();
    let filtered = model.filter_by_acv(thr);
    assert_eq!(filtered.num_attrs(), model.num_attrs());
    let tables = filtered.tables();
    for (id, e) in filtered.hypergraph().edges().take(50) {
        let t = tables.table(id);
        assert!((t.acv() - e.weight()).abs() < 1e-12);
    }
    // Names survive filtering.
    let a0 = AttrId::new(0);
    assert_eq!(filtered.attr_name(a0), model.attr_name(a0));
}
