//! Sliding-window lifecycle: `AssociationModel::advance` must produce a
//! model **bit-identical** to a full `AssociationModel::build` over the
//! equivalent `slice_obs` window — same edge ids, same kept-edge sets,
//! bit-identical ACVs/baselines/raw matrices — across k ∈ {3, 5, 8},
//! all counting strategies, and thread counts {1, 3}, at every step of
//! the stream.

use hypermine::core::{AdvanceError, AssociationModel, CountStrategy, ModelConfig};
use hypermine::data::{Database, StreamEvent, Value, WindowedDatabase};
use proptest::prelude::*;

/// Asserts full model equivalence: hypergraph (ids, sets, weights bit
/// for bit), baselines, majorities, raw ACV matrix, and the training
/// database itself.
fn assert_identical(adv: &AssociationModel, batch: &AssociationModel, what: &str) {
    assert_eq!(
        adv.hypergraph().num_edges(),
        batch.hypergraph().num_edges(),
        "{what}: edge count"
    );
    for (id, e) in batch.hypergraph().edges() {
        let o = adv.hypergraph().edge(id);
        assert_eq!(e.tail(), o.tail(), "{what}: tail of {id}");
        assert_eq!(e.head(), o.head(), "{what}: head of {id}");
        assert_eq!(
            e.weight().to_bits(),
            o.weight().to_bits(),
            "{what}: ACV of {id}"
        );
    }
    for t in adv.attrs() {
        assert_eq!(
            adv.baseline_acv(t).to_bits(),
            batch.baseline_acv(t).to_bits(),
            "{what}: baseline of {t}"
        );
        assert_eq!(
            adv.majority_value(t),
            batch.majority_value(t),
            "{what}: majority of {t}"
        );
        for h in adv.attrs() {
            assert_eq!(
                adv.raw_edge_acv(t, h).to_bits(),
                batch.raw_edge_acv(t, h).to_bits(),
                "{what}: raw ACV ({t}, {h})"
            );
        }
    }
    assert_eq!(adv.database(), batch.database(), "{what}: window database");
}

/// A random observation stream over `n_attrs` attributes with values in
/// `1..=k`, plus the window length to slide.
fn stream_with_k() -> impl Strategy<Value = (Vec<Vec<Value>>, usize, u8)> {
    (3usize..=5, 0usize..3).prop_flat_map(|(n_attrs, k_idx)| {
        let k = [3u8, 5, 8][k_idx];
        (8usize..=14, 6usize..=18).prop_flat_map(move |(window, extra)| {
            (
                proptest::collection::vec(
                    proptest::collection::vec(1..=k, n_attrs),
                    window + extra,
                ),
                Just(window),
                Just(k),
            )
        })
    })
}

fn db_from(rows: &[Vec<Value>], k: u8) -> Database {
    let n = rows[0].len();
    let cols: Vec<Vec<Value>> = (0..n)
        .map(|a| rows.iter().map(|r| r[a]).collect())
        .collect();
    Database::from_columns((0..n).map(|i| format!("A{i}")).collect(), k, cols).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `advance_batch(d)` produces exactly the model `d` sequential
    /// `advance` calls do — same edge ids, bit-identical ACVs, same
    /// epoch — for every batch size that divides the stream, on both
    /// the triple-tensor and (via the `Some(0)` budget override) the
    /// row-recount fallback paths.
    #[test]
    fn advance_batch_is_bit_identical_to_sequential_advances(
        (stream, window, k) in stream_with_k(),
        d in 2usize..=4,
        fallback_sel in 0usize..2,
    ) {
        let force_fallback = fallback_sel == 1;
        let full = db_from(&stream, k);
        let cfg = ModelConfig {
            threads: 1,
            triple_tensor_max_bytes: force_fallback.then_some(0),
            ..ModelConfig::default()
        };
        let mut sequential = AssociationModel::build(&full.slice_obs(0..window), &cfg).unwrap();
        let mut batched = sequential.clone();
        let tail: Vec<Vec<Value>> = stream[window..].to_vec();
        for chunk in tail.chunks(d) {
            for row in chunk {
                sequential.advance(row).unwrap();
            }
            batched.advance_batch(chunk).unwrap();
            assert_identical(&batched, &sequential, &format!("after chunk of {}", chunk.len()));
            prop_assert_eq!(batched.epoch(), sequential.epoch());
        }
        let stats = batched.incremental_stats().expect("state built");
        prop_assert_eq!(stats.uses_triple_tensor, !force_fallback);
    }

    /// Sliding a model with `advance` equals rebuilding from scratch on
    /// the slid window, for every batch strategy × thread combination,
    /// at every step.
    #[test]
    fn advance_is_bit_identical_to_batch_rebuild((stream, window, k) in stream_with_k()) {
        let full = db_from(&stream, k);
        let cfg = ModelConfig {
            threads: 1,
            ..ModelConfig::default()
        };
        let mut model = AssociationModel::build(&full.slice_obs(0..window), &cfg).unwrap();
        for step in 0..stream.len() - window {
            model.advance(&stream[window + step]).unwrap();
            prop_assert_eq!(model.epoch(), (step + 1) as u64);
            let w = full.slice_obs(step + 1..step + 1 + window);
            for strategy in [CountStrategy::Auto, CountStrategy::Bitset, CountStrategy::ObsMajor] {
                for threads in [1usize, 3] {
                    let batch = AssociationModel::build(
                        &w,
                        &ModelConfig { strategy, threads, ..ModelConfig::default() },
                    )
                    .unwrap();
                    assert_identical(
                        &model,
                        &batch,
                        &format!("step {step}, k {k}, {strategy:?} x{threads}"),
                    );
                }
            }
        }
    }

    /// Retire-only contraction: every `retire_oldest` — interleaved with
    /// fixed-width slides, after the ring has wrapped — leaves the model
    /// bit-identical to a batch rebuild of the contracted window, with
    /// the `WindowedDatabase` ring (driven through `StreamEvent`)
    /// materializing exactly the same window. Draining the model to one
    /// observation is rejected with `EmptyModel`.
    #[test]
    fn retire_only_contraction_matches_batch_rebuild((stream, window, k) in stream_with_k()) {
        let full = db_from(&stream, k);
        let cfg = ModelConfig { threads: 1, ..ModelConfig::default() };
        let mut model = AssociationModel::build(&full.slice_obs(0..window), &cfg).unwrap();
        let mut ring =
            WindowedDatabase::from_database(&full.slice_obs(0..window), window).unwrap();
        let epoch0 = model.epoch();

        // Phase A: slide through all but two tail rows so the ring's
        // start pointer wraps before any contraction happens.
        let tail = stream.len() - window;
        let reserve = 2usize.min(tail);
        let mut s = 0usize; // fixed-width slides so far
        let mut r = 0usize; // retires so far
        for _ in 0..tail - reserve {
            let row = &stream[window + s];
            prop_assert!(ring.apply(StreamEvent::Obs(row)).unwrap().is_some());
            model.advance(row).unwrap();
            s += 1;
        }

        // Phase B: contract halfway down via Gap events, checking the
        // ring and a batch rebuild at every step.
        let half = (window - 2) / 2;
        for _ in 0..half {
            prop_assert!(ring.apply(StreamEvent::Gap).unwrap().is_some());
            model.retire_oldest().unwrap();
            r += 1;
            let expect = full.slice_obs(s + r..s + window);
            prop_assert_eq!(ring.to_database(), expect.clone());
            let batch = AssociationModel::build(&expect, &cfg).unwrap();
            assert_identical(&model, &batch, &format!("retire {r} after {s} slides"));
        }

        // Phase C: the reserved rows slide at the contracted width (the
        // model's `advance` is a fixed-width slide, so the ring mirrors
        // it with an explicit retire + append).
        for _ in 0..reserve {
            let row = &stream[window + s];
            prop_assert!(ring.retire_oldest().is_some());
            ring.append_obs(row).unwrap();
            model.advance(row).unwrap();
            s += 1;
            let expect = full.slice_obs(s + r..s + window);
            prop_assert_eq!(ring.to_database(), expect.clone());
            let batch = AssociationModel::build(&expect, &cfg).unwrap();
            assert_identical(&model, &batch, &format!("contracted slide {s}"));
        }

        // Phase D: drain to two observations, still bit-identical.
        while window - r > 2 {
            prop_assert!(ring.apply(StreamEvent::Gap).unwrap().is_some());
            model.retire_oldest().unwrap();
            r += 1;
            let expect = full.slice_obs(s + r..s + window);
            prop_assert_eq!(ring.to_database(), expect.clone());
            let batch = AssociationModel::build(&expect, &cfg).unwrap();
            assert_identical(&model, &batch, &format!("drain to {}", window - r));
        }
        // Every slide and every retire bumped the epoch exactly once.
        prop_assert_eq!(model.epoch(), epoch0 + (s + r) as u64);

        // One more retire reaches a single observation; beyond that the
        // model refuses rather than going empty.
        model.retire_oldest().unwrap();
        prop_assert_eq!(model.database().num_obs(), 1);
        prop_assert_eq!(model.retire_oldest(), Err(AdvanceError::EmptyModel));
    }

    /// The `WindowedDatabase` ring materializes exactly the `slice_obs`
    /// window at every slide, including after wrap-around.
    #[test]
    fn windowed_database_tracks_slice_obs((stream, window, k) in stream_with_k()) {
        let full = db_from(&stream, k);
        let mut ring = WindowedDatabase::from_database(&full.slice_obs(0..window), window).unwrap();
        for step in 0..stream.len() - window {
            ring.advance(&stream[window + step]).unwrap();
            prop_assert_eq!(ring.num_obs(), window);
            let expect = full.slice_obs(step + 1..step + 1 + window);
            prop_assert_eq!(ring.to_database(), expect);
        }
    }
}

/// The paper-configuration (C2, k = 5) market-shaped case: a longer
/// deterministic stream with strong cross-attribute structure, advanced
/// far enough to wrap the ring several times.
#[test]
fn long_structured_stream_stays_identical() {
    let n = 7usize;
    let k = 5u8;
    let len = 90usize;
    let window = 30usize;
    let rows: Vec<Vec<Value>> = (0..len)
        .map(|o| {
            (0..n)
                .map(|a| {
                    // Attributes 0/1 track each other; others cycle.
                    let v = match a {
                        0 => o % 5,
                        1 => (o + usize::from(o % 11 == 0)) % 5,
                        _ => (o / (a + 1) + a) % 5,
                    };
                    (v + 1) as Value
                })
                .collect()
        })
        .collect();
    let full = db_from(&rows, k);
    let cfg = ModelConfig {
        gamma_edge: 1.20,
        gamma_hyper: 1.12,
        threads: 1,
        ..ModelConfig::default()
    };
    let mut model = AssociationModel::build(&full.slice_obs(0..window), &cfg).unwrap();
    for step in 0..len - window {
        model.advance(&rows[window + step]).unwrap();
        // Check a batch rebuild every few slides (and always at the end).
        if step % 5 == 4 || step == len - window - 1 {
            let batch =
                AssociationModel::build(&full.slice_obs(step + 1..step + 1 + window), &cfg)
                    .unwrap();
            assert_identical(&model, &batch, &format!("C2 step {step}"));
        }
    }
    assert_eq!(model.epoch(), (len - window) as u64);
}

/// Derived read paths (association tables, classifier-grade per-edge
/// tables) agree after advancing, because the model's database slid
/// exactly.
#[test]
fn tables_after_advance_match_batch_tables() {
    let k = 3u8;
    let rows: Vec<Vec<Value>> = (0..40)
        .map(|o| {
            vec![
                (o % 3 + 1) as Value,
                ((o / 2) % 3 + 1) as Value,
                ((o * 5 / 3) % 3 + 1) as Value,
            ]
        })
        .collect();
    let full = db_from(&rows, k);
    let cfg = ModelConfig::default();
    let mut model = AssociationModel::build(&full.slice_obs(0..25), &cfg).unwrap();
    for step in 0..10 {
        model.advance(&rows[25 + step]).unwrap();
    }
    let batch = AssociationModel::build(&full.slice_obs(10..35), &cfg).unwrap();
    let (mt, bt) = (model.tables(), batch.tables());
    for (id, _) in batch.hypergraph().edges() {
        assert_eq!(mt.table(id), bt.table(id), "table of {id}");
    }
}

/// Wide-attribute streaming: at n = 128, k = 3 the triple tensor wants
/// ~56 MB and the default 32 MB budget forces the **row-recount
/// fallback** (the ROADMAP's untested n ≫ 100 crossover). Both single
/// and batched advances on that path must stay bit-identical to batch
/// rebuilds of the slid window.
#[test]
fn wide_attribute_stream_uses_fallback_and_stays_identical() {
    let n = 128usize;
    let k = 3u8;
    let window = 36usize;
    let len = window + 8;
    let rows: Vec<Vec<Value>> = (0..len)
        .map(|o| {
            (0..n)
                .map(|a| match a % 4 {
                    0 => (o % 3 + 1) as Value,
                    1 => ((o + a / 4) % 3 + 1) as Value,
                    2 => (((o * 5 + a * 11) / 2) % 3 + 1) as Value,
                    _ => ((o / 3 + a) % 3 + 1) as Value,
                })
                .collect()
        })
        .collect();
    let full = db_from(&rows, k);
    let cfg = ModelConfig {
        threads: 1,
        gamma_edge: 1.3,
        gamma_hyper: 1.25,
        ..ModelConfig::default()
    };
    // Single advances for the first half of the stream…
    let mut model = AssociationModel::build(&full.slice_obs(0..window), &cfg).unwrap();
    for step in 0..4 {
        model.advance(&rows[window + step]).unwrap();
    }
    let stats = model.incremental_stats().expect("state built");
    assert!(
        !stats.uses_triple_tensor,
        "n = 128 must exceed the default tensor budget"
    );
    assert_eq!(stats.triple_tensor_bytes, 0);
    assert!(stats.s2_bytes > 0);
    let batch = AssociationModel::build(&full.slice_obs(4..4 + window), &cfg).unwrap();
    assert_identical(&model, &batch, "n=128 fallback after 4 single advances");
    // …one advance_batch for the second half.
    model.advance_batch(&rows[window + 4..]).unwrap();
    let batch = AssociationModel::build(&full.slice_obs(8..8 + window), &cfg).unwrap();
    assert_identical(&model, &batch, "n=128 fallback after advance_batch(4)");
    assert_eq!(model.epoch(), 8);
}

/// The `triple_tensor_max_bytes` override steers the engine between the
/// tensor and row-recount paths on the same fixture, with bit-identical
/// results either way; `incremental_stats` reports which side ran.
#[test]
fn tensor_budget_override_switches_paths_identically() {
    let k = 4u8;
    let rows: Vec<Vec<Value>> = (0..30)
        .map(|o| {
            vec![
                (o % 4 + 1) as Value,
                ((o / 2) % 4 + 1) as Value,
                ((o * 3 / 2) % 4 + 1) as Value,
                ((o / 5) % 4 + 1) as Value,
            ]
        })
        .collect();
    let full = db_from(&rows, k);
    let window = 20usize;
    let mut models = Vec::new();
    for budget in [None, Some(0), Some(usize::MAX)] {
        let cfg = ModelConfig {
            threads: 1,
            triple_tensor_max_bytes: budget,
            ..ModelConfig::default()
        };
        let mut model = AssociationModel::build(&full.slice_obs(0..window), &cfg).unwrap();
        for row in &rows[window..] {
            model.advance(row).unwrap();
        }
        let stats = model.incremental_stats().expect("state built");
        // n = 4, k = 4: the tensor costs 6·16·4·4·2 = 3 KB — within the
        // default budget, excluded by Some(0).
        assert_eq!(stats.uses_triple_tensor, budget != Some(0), "budget {budget:?}");
        assert_eq!(stats.triple_tensor_bytes > 0, budget != Some(0));
        models.push(model);
    }
    let batch = AssociationModel::build(
        &full.slice_obs(10..30),
        &ModelConfig {
            threads: 1,
            ..ModelConfig::default()
        },
    )
    .unwrap();
    for model in &models {
        assert_identical(model, &batch, "tensor-budget override");
    }
}

/// A bad row anywhere in a batch rejects the whole batch up front: the
/// model is untouched (no partial slides) and batching resumes cleanly.
#[test]
fn rejected_batches_leave_the_model_unchanged() {
    let k = 3u8;
    let rows: Vec<Vec<Value>> = (0..26)
        .map(|o| vec![(o % 3 + 1) as Value, ((o / 2) % 3 + 1) as Value, 1])
        .collect();
    let full = db_from(&rows, k);
    let cfg = ModelConfig::default();
    let mut model = AssociationModel::build(&full.slice_obs(0..20), &cfg).unwrap();
    model.advance(&rows[20]).unwrap();
    let before = model.clone();
    // Second row of the batch is invalid: arity, then range.
    assert_eq!(
        model.advance_batch(&[rows[21].clone(), vec![1, 2]]),
        Err(AdvanceError::ArityMismatch {
            expected: 3,
            got: 2
        })
    );
    assert_eq!(
        model.advance_batch(&[rows[21].clone(), vec![1, 4, 1]]),
        Err(AdvanceError::ValueOutOfRange { attr: 1, value: 4 })
    );
    assert_eq!(model.epoch(), 1);
    assert_identical(&model, &before, "after rejected batches");
    // An empty batch is a no-op, then a valid batch lands.
    model.advance_batch(&[]).unwrap();
    assert_eq!(model.epoch(), 1);
    model.advance_batch(&rows[21..24]).unwrap();
    assert_eq!(model.epoch(), 4);
    let batch = AssociationModel::build(&full.slice_obs(4..24), &cfg).unwrap();
    assert_identical(&model, &batch, "after the recovering batch");
}

/// Validation errors leave the model untouched and advancing resumes
/// cleanly afterwards.
#[test]
fn rejected_rows_do_not_corrupt_the_stream() {
    let k = 4u8;
    let rows: Vec<Vec<Value>> = (0..30)
        .map(|o| vec![(o % 4 + 1) as Value, ((o / 3) % 4 + 1) as Value, 1])
        .collect();
    let full = db_from(&rows, k);
    let cfg = ModelConfig::default();
    let mut model = AssociationModel::build(&full.slice_obs(0..20), &cfg).unwrap();
    model.advance(&rows[20]).unwrap();
    assert_eq!(
        model.advance(&[1, 2]),
        Err(AdvanceError::ArityMismatch {
            expected: 3,
            got: 2
        })
    );
    assert_eq!(
        model.advance(&[5, 1, 1]),
        Err(AdvanceError::ValueOutOfRange { attr: 0, value: 5 })
    );
    model.advance(&rows[21]).unwrap();
    assert_eq!(model.epoch(), 2);
    let batch = AssociationModel::build(&full.slice_obs(2..22), &cfg).unwrap();
    assert_identical(&model, &batch, "after rejected rows");
}
