//! Every worked example in the paper, as exact-value integration tests:
//! the Patient / Gene / Personal-Interest databases (Examples 3.3–3.5),
//! the association-similarity Example 3.12, and Theorem 3.8.

use hypermine::core::{out_similarity_graph, CountingEngine, MvaRule};
use hypermine::data::discretize::{discretize_by, Discretizer, FixedCuts};
use hypermine::data::{confidence, support, AttrId, Database, Value};
use hypermine::hypergraph::{DirectedHypergraph, NodeId};

fn a(i: u32) -> AttrId {
    AttrId::new(i)
}

/// Example 3.3: the Patient database, discretized with ⌊v/10⌋.
#[test]
fn example_3_3_patient_database() {
    let raw: [[f64; 4]; 8] = [
        [25.0, 105.0, 135.0, 75.0],
        [62.0, 160.0, 165.0, 85.0],
        [32.0, 125.0, 139.0, 71.0],
        [12.0, 95.0, 105.0, 67.0],
        [38.0, 129.0, 135.0, 75.0],
        [39.0, 121.0, 117.0, 71.0],
        [41.0, 134.0, 145.0, 73.0],
        [85.0, 125.0, 155.0, 78.0],
    ];
    let columns: Vec<Vec<Value>> = (0..4)
        .map(|c| {
            discretize_by(
                &raw.iter().map(|r| r[c]).collect::<Vec<_>>(),
                |x| (x / 10.0).floor() as Value,
            )
        })
        .collect();
    let db = Database::from_columns(
        vec!["A".into(), "C".into(), "B".into(), "H".into()],
        16,
        columns,
    )
    .unwrap();

    // Table 3.2 row checks.
    assert_eq!(db.value(a(0), 0), 2); // age 25 -> 2
    assert_eq!(db.value(a(1), 1), 16); // cholesterol 160 -> 16
    assert_eq!(db.value(a(2), 7), 15); // BP 155 -> 15
    assert_eq!(db.value(a(3), 3), 6); // HR 67 -> 6

    // X = {(A,3),(C,12)}, Y = {(B,13)}: Supp 0.375, Conf 2/3.
    let x = [(a(0), 3), (a(1), 12)];
    let y = [(a(2), 13)];
    assert!((support(&db, &x) - 0.375).abs() < 1e-12);
    assert!((confidence(&db, &x, &y).unwrap() - 2.0 / 3.0).abs() < 1e-12);
}

/// Example 3.4: the Gene database with fixed expression cuts.
#[test]
fn example_3_4_gene_database() {
    let raw: [[f64; 4]; 8] = [
        [54.23, 66.22, 342.32, 422.21],
        [541.21, 324.21, 165.21, 852.21],
        [321.67, 125.98, 139.43, 71.11],
        [123.87, 95.54, 105.88, 678.65],
        [388.44, 129.33, 135.65, 754.32],
        [399.98, 121.54, 117.55, 719.33],
        [414.33, 134.73, 145.32, 733.22],
        [855.78, 125.93, 155.76, 789.43],
    ];
    let cuts = FixedCuts::new(vec![334.0, 667.0]);
    let columns: Vec<Vec<Value>> = (0..4)
        .map(|c| cuts.fit_apply(&raw.iter().map(|r| r[c]).collect::<Vec<_>>()))
        .collect();
    let db = Database::from_columns(
        vec!["G1".into(), "G2".into(), "G3".into(), "G4".into()],
        3,
        columns,
    )
    .unwrap();

    // Table 3.4: patient 1 = (↓, ↓, ↔, ↔); patient 8 = (↑, ↓, ↓, ↑).
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 0)).collect::<Vec<_>>(),
        vec![1, 1, 2, 2]
    );
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 7)).collect::<Vec<_>>(),
        vec![3, 1, 1, 3]
    );

    // X = {(G2,↓),(G3,↓)}, Y = {(G4,↑)}: Supp 0.875, Conf 6/7.
    let rule = MvaRule::new(vec![(a(1), 1), (a(2), 1)], vec![(a(3), 3)]).unwrap();
    assert!((rule.antecedent_support(&db) - 0.875).abs() < 1e-12);
    assert!((rule.confidence(&db).unwrap() - 6.0 / 7.0).abs() < 1e-12);
}

/// Example 3.5: the Personal-Interest database with l/m/h cuts.
#[test]
fn example_3_5_personal_interest_database() {
    let raw: [[f64; 4]; 8] = [
        [10.0, 10.0, 3.0, 5.0],
        [7.0, 9.0, 4.0, 6.0],
        [3.0, 1.0, 9.0, 10.0],
        [5.0, 1.0, 10.0, 7.0],
        [9.0, 8.0, 2.0, 6.0],
        [8.0, 10.0, 7.0, 6.0],
        [5.0, 4.0, 6.0, 5.0],
        [8.0, 10.0, 1.0, 8.0],
    ];
    let cuts = FixedCuts::new(vec![4.0, 8.0]);
    let columns: Vec<Vec<Value>> = (0..4)
        .map(|c| cuts.fit_apply(&raw.iter().map(|r| r[c]).collect::<Vec<_>>()))
        .collect();
    let db = Database::from_columns(
        vec!["R".into(), "P".into(), "M".into(), "E".into()],
        3,
        columns,
    )
    .unwrap();

    // Table 3.6 row checks: person 1 = (h,h,l,m); person 7 = (m,m,m,m).
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 0)).collect::<Vec<_>>(),
        vec![3, 3, 1, 2]
    );
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 6)).collect::<Vec<_>>(),
        vec![2, 2, 2, 2]
    );

    // X = {(R,h),(P,h)}, Y = {(M,l)}: Supp 0.5, Conf 0.75.
    let rule = MvaRule::new(vec![(a(0), 3), (a(1), 3)], vec![(a(2), 1)]).unwrap();
    assert!((rule.antecedent_support(&db) - 0.5).abs() < 1e-12);
    assert!((rule.confidence(&db).unwrap() - 0.75).abs() < 1e-12);
}

/// Example 3.12: weighted out-similarity = 0.4 / (0.6 + 0.5 + 0.7).
#[test]
fn example_3_12_out_similarity() {
    let n = NodeId::new;
    let mut g = DirectedHypergraph::new(6);
    g.add_edge(&[n(0), n(2)], &[n(5)], 0.4).unwrap(); // a
    g.add_edge(&[n(0), n(3)], &[n(5)], 0.5).unwrap(); // b
    g.add_edge(&[n(1), n(2)], &[n(5)], 0.6).unwrap(); // c
    g.add_edge(&[n(1), n(3), n(4)], &[n(5)], 0.7).unwrap(); // d
    g.add_edge(&[n(3), n(4)], &[n(5)], 0.8).unwrap(); // e
    let s = out_similarity_graph(&g, n(0), n(1));
    assert!((s - 0.4 / 1.8).abs() < 1e-12, "got {s}");
}

/// Theorem 3.8 on the paper's own Gene fixture: adding tail attributes
/// never lowers an ACV.
#[test]
fn theorem_3_8_on_gene_fixture() {
    let db = Database::from_rows(
        vec!["G1".into(), "G2".into(), "G3".into(), "G4".into()],
        3,
        &[
            [1, 1, 2, 2],
            [2, 1, 1, 3],
            [1, 1, 1, 1],
            [1, 1, 1, 3],
            [2, 1, 1, 3],
            [2, 1, 1, 3],
            [2, 1, 1, 3],
            [3, 1, 1, 3],
        ],
    )
    .unwrap();
    let engine = CountingEngine::new(&db);
    for h in 0..4u32 {
        let baseline = engine.baseline_acv(a(h));
        for x in 0..4u32 {
            if x == h {
                continue;
            }
            let acv1 = engine.edge_acv(a(x), a(h));
            assert!(acv1 + 1e-12 >= baseline, "part 1 fails at ({x},{h})");
            for y in 0..4u32 {
                if y == h || y <= x {
                    continue;
                }
                let pair = engine.pair_rows(a(x), a(y));
                let acv2 = engine.hyper_acv(&pair, a(h));
                let floor = acv1.max(engine.edge_acv(a(y), a(h)));
                assert!(acv2 + 1e-12 >= floor, "part 2 fails at ({x},{y},{h})");
            }
        }
    }
}
