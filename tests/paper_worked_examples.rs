//! Every worked example in the paper, as exact-value integration tests:
//! the Patient / Gene / Personal-Interest databases (Examples 3.3–3.5)
//! sourced from the scenario registry, their Chapter 6 worked outputs
//! (gene clusters, dominator sets, predicted expression values, the
//! Patient edge list, the interest-similarity matrix), the
//! association-similarity Example 3.12, and Theorem 3.8.

use hypermine::core::{
    attr_of, cluster_attributes, node_of, out_similarity_graph, set_cover_adaptation,
    AssociationClassifier, AssociationModel, CountingEngine, SetCoverOptions,
};
use hypermine::data::{confidence, support, AttrId, Database};
use hypermine::experiments::registry::{self, RuleCheck, ScenarioSpec, Source};
use hypermine::experiments::replicate::paper_database;
use hypermine::hypergraph::{DirectedHypergraph, NodeId};

fn a(i: u32) -> AttrId {
    AttrId::new(i)
}

/// The registry spec + discretized database of an inline paper scenario.
fn paper_fixture(name: &str) -> (&'static ScenarioSpec, Database) {
    let spec = registry::find(name).unwrap_or_else(|| panic!("{name} not registered"));
    let db = paper_database(spec).expect("inline scenario");
    (spec, db)
}

/// Asserts one registry-pinned rule outcome bit-exactly against `db`.
fn assert_rule(db: &Database, check: &RuleCheck) {
    let x: Vec<(AttrId, u8)> = check
        .antecedent
        .iter()
        .map(|&(attr, v)| (a(attr), v))
        .collect();
    let y = [(a(check.consequent.0), check.consequent.1)];
    let expect_supp = f64::from(check.support.0) / f64::from(check.support.1);
    let expect_conf = f64::from(check.confidence.0) / f64::from(check.confidence.1);
    assert!((support(db, &x) - expect_supp).abs() < 1e-12);
    assert!((confidence(db, &x, &y).unwrap() - expect_conf).abs() < 1e-12);
}

/// The C1 model of an inline scenario (its single registered run).
fn paper_model(spec: &ScenarioSpec, db: &Database) -> AssociationModel {
    AssociationModel::build(db, &spec.runs[0].model_config(db.num_attrs())).unwrap()
}

/// Example 3.3: the Patient database, discretized with ⌊v/10⌋.
#[test]
fn example_3_3_patient_database() {
    let (spec, db) = paper_fixture("patient_db");

    // Table 3.2 row checks.
    assert_eq!(db.value(a(0), 0), 2); // age 25 -> 2
    assert_eq!(db.value(a(1), 1), 16); // cholesterol 160 -> 16
    assert_eq!(db.value(a(2), 7), 15); // BP 155 -> 15
    assert_eq!(db.value(a(3), 3), 6); // HR 67 -> 6

    // X = {(A,3),(C,12)}, Y = {(B,13)}: Supp 3/8, Conf 2/3.
    for check in match spec.source {
        Source::Inline(t) => t.rules,
        Source::Market { .. } => unreachable!(),
    } {
        assert_rule(&db, check);
    }
}

/// Example 3.3 continued: the C1 association hypergraph over the Patient
/// database keeps exactly the 12 directed edges and the single 2-to-1
/// hyperedge Cholesterol ∧ Blood-Pressure ⟹ Age (ACV 1.0).
#[test]
fn example_3_3_patient_edge_list() {
    let (spec, db) = paper_fixture("patient_db");
    let model = paper_model(spec, &db);
    let stats = model.stats();
    assert_eq!(stats.num_directed_edges, 12);
    assert_eq!(stats.num_hyperedges, 1);

    let tables = model.tables();
    let mut hyper = Vec::new();
    for (id, edge) in model.hypergraph().edges() {
        let t = tables.table(id);
        if t.tail().len() == 2 {
            hyper.push((t.tail().to_vec(), t.head(), edge.weight()));
        }
    }
    assert_eq!(hyper.len(), 1);
    let (tail, head, weight) = &hyper[0];
    // Cholesterol (1) & Blood-Pressure (2) -> Age (0) at full confidence.
    assert_eq!(tail.as_slice(), &[a(1), a(2)]);
    assert_eq!(*head, a(0));
    assert!((weight - 1.0).abs() < 1e-12);
}

/// Example 3.4: the Gene database with fixed expression cuts.
#[test]
fn example_3_4_gene_database() {
    let (spec, db) = paper_fixture("gene_expression");

    // Table 3.4: patient 1 = (↓, ↓, ↔, ↔); patient 8 = (↑, ↓, ↓, ↑).
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 0)).collect::<Vec<_>>(),
        vec![1, 1, 2, 2]
    );
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 7)).collect::<Vec<_>>(),
        vec![3, 1, 1, 3]
    );

    // X = {(G2,↓),(G3,↓)}, Y = {(G4,↑)}: Supp 7/8, Conf 6/7.
    for check in match spec.source {
        Source::Inline(t) => t.rules,
        Source::Market { .. } => unreachable!(),
    } {
        assert_rule(&db, check);
    }
}

/// Chapter 6 problem (1) on the Gene database: t = 2 clustering splits
/// the genes into {G1, G3, G4} around G1 and the singleton {G2}.
#[test]
fn chapter_6_gene_clusters() {
    let (spec, db) = paper_fixture("gene_expression");
    let model = paper_model(spec, &db);
    let attrs: Vec<AttrId> = model.attrs().collect();
    let clusters = cluster_attributes(&model, &attrs, 2, None);

    let mut rendered: Vec<(String, Vec<String>)> = clusters
        .center_attrs()
        .iter()
        .enumerate()
        .map(|(c, &center)| {
            let mut members: Vec<String> = clusters
                .cluster_members(c)
                .iter()
                .map(|&m| model.attr_name(m).to_string())
                .collect();
            members.sort();
            (model.attr_name(center).to_string(), members)
        })
        .collect();
    rendered.sort();
    assert_eq!(
        rendered,
        vec![
            ("G1".to_string(), vec!["G1".into(), "G3".into(), "G4".into()]),
            ("G2".to_string(), vec!["G2".into()]),
        ]
    );
}

/// Chapter 6 problem (2) on the Gene database: the set-cover dominator
/// is {G3}, and measuring it predicts patient 1's unmeasured expression
/// values exactly — G1 ↓ and G4 ↔, both at full confidence.
#[test]
fn chapter_6_gene_expression_prediction() {
    let (spec, db) = paper_fixture("gene_expression");
    let model = paper_model(spec, &db);
    let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
    let dom = set_cover_adaptation(model.hypergraph(), &nodes, &SetCoverOptions::default());
    let measured: Vec<AttrId> = dom.dominator.iter().map(|&n| attr_of(n)).collect();
    assert_eq!(measured, vec![a(2)], "set-cover dominator is G3");

    let clf = AssociationClassifier::new(&model, &measured);
    let values: Vec<u8> = measured.iter().map(|&m| db.value(m, 0)).collect();
    let mut predicted = Vec::new();
    for t in model.attrs().filter(|t| !measured.contains(t)) {
        if let Some(p) = clf.predict(&values, t) {
            assert_eq!(p.value, db.value(t, 0), "prediction for {}", model.attr_name(t));
            assert!((p.confidence - 1.0).abs() < 1e-12);
            predicted.push((model.attr_name(t).to_string(), p.value));
        }
    }
    // G1 ↓ (1) and G4 ↔ (2); G2 has no kept edge from G3 to predict with.
    assert_eq!(
        predicted,
        vec![("G1".to_string(), 1), ("G4".to_string(), 2)]
    );
}

/// Example 3.5: the Personal-Interest database with l/m/h cuts.
#[test]
fn example_3_5_personal_interest_database() {
    let (spec, db) = paper_fixture("personal_interest");

    // Table 3.6 row checks: person 1 = (h,h,l,m); person 7 = (m,m,m,m).
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 0)).collect::<Vec<_>>(),
        vec![3, 3, 1, 2]
    );
    assert_eq!(
        (0..4).map(|c| db.value(a(c), 6)).collect::<Vec<_>>(),
        vec![2, 2, 2, 2]
    );

    // X = {(R,h),(P,h)}, Y = {(M,l)}: Supp 4/8, Conf 3/4.
    for check in match spec.source {
        Source::Inline(t) => t.rules,
        Source::Market { .. } => unreachable!(),
    } {
        assert_rule(&db, check);
    }
}

/// Example 3.5 continued: the association-distance matrix over the
/// interest attributes matches the committed replication summary —
/// reading and playing closest (0.71), reading and eating farthest
/// (0.95).
#[test]
fn example_3_5_interest_similarity_matrix() {
    let (spec, db) = paper_fixture("personal_interest");
    let model = paper_model(spec, &db);
    let stats = model.stats();
    assert_eq!(stats.num_directed_edges, 8);
    assert_eq!(stats.num_hyperedges, 3);

    // Upper triangle at the summary's two-decimal precision.
    let expected = [
        ((0u32, 1u32), 0.71),
        ((0, 2), 0.86),
        ((0, 3), 0.95),
        ((1, 2), 0.70),
        ((1, 3), 0.64),
        ((2, 3), 0.78),
    ];
    for ((i, j), want) in expected {
        let got = model.similarity_distance(a(i), a(j));
        assert!(
            (got - want).abs() < 0.005,
            "distance({i},{j}) = {got:.4}, summary pins {want}"
        );
        // The matrix is symmetric with a zero diagonal.
        assert!((model.similarity_distance(a(j), a(i)) - got).abs() < 1e-12);
    }
    for i in 0..4u32 {
        assert!(model.similarity_distance(a(i), a(i)).abs() < 1e-12);
    }
}

/// Example 3.12: weighted out-similarity = 0.4 / (0.6 + 0.5 + 0.7).
#[test]
fn example_3_12_out_similarity() {
    let n = NodeId::new;
    let mut g = DirectedHypergraph::new(6);
    g.add_edge(&[n(0), n(2)], &[n(5)], 0.4).unwrap(); // a
    g.add_edge(&[n(0), n(3)], &[n(5)], 0.5).unwrap(); // b
    g.add_edge(&[n(1), n(2)], &[n(5)], 0.6).unwrap(); // c
    g.add_edge(&[n(1), n(3), n(4)], &[n(5)], 0.7).unwrap(); // d
    g.add_edge(&[n(3), n(4)], &[n(5)], 0.8).unwrap(); // e
    let s = out_similarity_graph(&g, n(0), n(1));
    assert!((s - 0.4 / 1.8).abs() < 1e-12, "got {s}");
}

/// Theorem 3.8 on the paper's own Gene fixture: adding tail attributes
/// never lowers an ACV.
#[test]
fn theorem_3_8_on_gene_fixture() {
    let (_, db) = paper_fixture("gene_expression");
    let engine = CountingEngine::new(&db);
    for h in 0..4u32 {
        let baseline = engine.baseline_acv(a(h));
        for x in 0..4u32 {
            if x == h {
                continue;
            }
            let acv1 = engine.edge_acv(a(x), a(h));
            assert!(acv1 + 1e-12 >= baseline, "part 1 fails at ({x},{h})");
            for y in 0..4u32 {
                if y == h || y <= x {
                    continue;
                }
                let pair = engine.pair_rows(a(x), a(y));
                let acv2 = engine.hyper_acv(&pair, a(h));
                let floor = acv1.max(engine.edge_acv(a(y), a(h)));
                assert!(acv2 + 1e-12 >= floor, "part 2 fails at ({x},{y},{h})");
            }
        }
    }
}
