//! Property-based tests (proptest) for the core invariants:
//! counting correctness, Theorem 3.8 monotonicity, γ-filter soundness,
//! similarity symmetry, classifier normalization, discretizer behaviour,
//! and approximation-quality bounds versus brute force on small instances.

use hypermine::approx::{greedy_set_cover, t_clustering, DistanceMatrix};
use hypermine::core::{
    dominating_adaptation, in_similarity_graph, is_dominator, node_of, out_similarity_graph,
    set_cover_adaptation, AssociationClassifier, AssociationModel, CountingEngine, ModelConfig,
    SetCoverOptions, StopRule,
};
use hypermine::data::discretize::{Discretizer, EquiDepth};
use hypermine::data::{AttrId, Database, Value};
use hypermine::hypergraph::NodeId;
use proptest::prelude::*;

/// Strategy: a small random database (2..=5 attrs, 5..=60 obs, k in 2..=4).
fn small_db() -> impl Strategy<Value = Database> {
    (2usize..=5, 5usize..=60, 2u8..=4).prop_flat_map(|(n_attrs, n_obs, k)| {
        proptest::collection::vec(
            proptest::collection::vec(1..=k, n_obs),
            n_attrs,
        )
        .prop_map(move |cols| {
            Database::from_columns(
                (0..cols.len()).map(|i| format!("A{i}")).collect(),
                k,
                cols,
            )
            .expect("generated values are in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bitset counting engine agrees with the naive recount on every
    /// edge and hyperedge table.
    #[test]
    fn bitset_counting_matches_naive(db in small_db()) {
        let engine = CountingEngine::new(&db);
        let attrs: Vec<AttrId> = db.attrs().collect();
        for &a in &attrs {
            for &h in &attrs {
                if a == h { continue; }
                prop_assert_eq!(engine.edge_table(a, h), engine.naive_table(&[a], h));
            }
        }
        if attrs.len() >= 3 {
            let pair = engine.pair_rows(attrs[0], attrs[1]);
            for &h in &attrs[2..] {
                prop_assert_eq!(engine.hyper_table(&pair, h), engine.naive_table(&[attrs[0], attrs[1]], h));
            }
        }
    }

    /// Theorem 3.8: ACV(∅,h) <= ACV({a},h) <= ACV({a,b},h); all in [0,1].
    #[test]
    fn theorem_3_8_monotonicity(db in small_db()) {
        let engine = CountingEngine::new(&db);
        let attrs: Vec<AttrId> = db.attrs().collect();
        for &h in &attrs {
            let base = engine.baseline_acv(h);
            prop_assert!((0.0..=1.0).contains(&base));
            for &a in &attrs {
                if a == h { continue; }
                let acv1 = engine.edge_acv(a, h);
                prop_assert!((0.0..=1.0).contains(&acv1));
                prop_assert!(acv1 + 1e-12 >= base);
                for &b in &attrs {
                    if b == h || b <= a { continue; }
                    let pair = engine.pair_rows(a, b);
                    let acv2 = engine.hyper_acv(&pair, h);
                    prop_assert!((0.0..=1.0).contains(&acv2));
                    prop_assert!(acv2 + 1e-12 >= acv1.max(engine.edge_acv(b, h)));
                }
            }
        }
    }

    /// Every edge kept by the builder satisfies its γ inequality, and edge
    /// weights equal their tables' ACVs.
    #[test]
    fn gamma_filter_sound(db in small_db()) {
        let cfg = ModelConfig::default();
        let model = AssociationModel::build(&db, &cfg).unwrap();
        let tables = model.tables();
        for (id, e) in model.hypergraph().edges() {
            let t = tables.table(id);
            prop_assert!((t.acv() - e.weight()).abs() < 1e-12);
            match t.tail() {
                [a] => {
                    let _ = a;
                    let head = t.head();
                    prop_assert!(e.weight() + 1e-12 >= cfg.gamma_edge * model.baseline_acv(head));
                }
                [a, b] => {
                    let head = t.head();
                    let floor = model.raw_edge_acv(*a, head).max(model.raw_edge_acv(*b, head));
                    prop_assert!(e.weight() + 1e-12 >= cfg.gamma_hyper * floor);
                }
                _ => prop_assert!(false, "unexpected tail arity"),
            }
        }
    }

    /// In-/out-similarity are symmetric, bounded in [0,1], and reflexive.
    #[test]
    fn similarity_symmetric_bounded(db in small_db()) {
        let model = AssociationModel::build(&db, &ModelConfig::default()).unwrap();
        let g = model.hypergraph();
        let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
        for &x in &nodes {
            prop_assert_eq!(out_similarity_graph(g, x, x), 1.0);
            prop_assert_eq!(in_similarity_graph(g, x, x), 1.0);
            for &y in &nodes {
                let o1 = out_similarity_graph(g, x, y);
                let o2 = out_similarity_graph(g, y, x);
                prop_assert!((o1 - o2).abs() < 1e-12);
                prop_assert!((0.0..=1.0).contains(&o1));
                let i1 = in_similarity_graph(g, x, y);
                let i2 = in_similarity_graph(g, y, x);
                prop_assert!((i1 - i2).abs() < 1e-12);
                prop_assert!((0.0..=1.0).contains(&i1));
            }
        }
    }

    /// Classifier predictions: scores normalize, confidence in [0,1], and
    /// the predicted value maximizes the accumulator.
    #[test]
    fn classifier_scores_normalized(db in small_db(), obs_idx in 0usize..60) {
        prop_assume!(db.num_attrs() >= 2 && db.num_obs() > 0);
        let model = AssociationModel::build(&db, &ModelConfig::default()).unwrap();
        let attrs: Vec<AttrId> = db.attrs().collect();
        let known = &attrs[..attrs.len() - 1];
        let target = attrs[attrs.len() - 1];
        let clf = AssociationClassifier::new(&model, known);
        let obs = obs_idx % db.num_obs();
        let values: Vec<Value> = known.iter().map(|&a| db.value(a, obs)).collect();
        if let Some(p) = clf.predict(&values, target) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p.confidence));
            let total: f64 = p.scores.iter().sum();
            prop_assert!(total > 0.0);
            let max = p.scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((p.scores[(p.value - 1) as usize] - max).abs() < 1e-15);
            prop_assert!((p.confidence - max / total).abs() < 1e-12);
        }
    }

    /// Dominators: FullCover covers everything reachable; results satisfy
    /// Definition 4.1 on the covered subset.
    #[test]
    fn dominators_valid(db in small_db()) {
        let model = AssociationModel::build(&db, &ModelConfig::default()).unwrap();
        let g = model.hypergraph();
        let nodes: Vec<NodeId> = model.attrs().map(node_of).collect();
        let r5 = dominating_adaptation(g, &nodes, StopRule::FullCover);
        // FullCover of Algorithm 5 always covers all of S (self-cover).
        prop_assert_eq!(r5.covered_in_s, nodes.len());
        for opts in [SetCoverOptions::default(), SetCoverOptions { stop: StopRule::FullCover, ..Default::default() }] {
            let r6 = set_cover_adaptation(g, &nodes, &opts);
            let covered: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|n| r6.covered[n.index()])
                .collect();
            prop_assert!(is_dominator(g, &covered, &r6.dominator));
            prop_assert!(r6.covered_in_s <= nodes.len());
        }
    }

    /// Equi-depth discretization: outputs lie in 1..=k and bucket counts
    /// differ by at most ~1/k of the data for continuous (duplicate-free)
    /// inputs.
    #[test]
    fn equi_depth_balanced(mut raw in proptest::collection::vec(-1e6f64..1e6, 30..200), k in 2u8..=5) {
        raw.sort_by(|a, b| a.partial_cmp(b).unwrap());
        raw.dedup();
        prop_assume!(raw.len() >= 2 * k as usize);
        let vals = EquiDepth::new(k).fit_apply(&raw);
        prop_assert!(vals.iter().all(|&v| v >= 1 && v <= k));
        let mut counts = vec![0usize; k as usize];
        for v in &vals {
            counts[(*v - 1) as usize] += 1;
        }
        let ideal = raw.len() as f64 / k as f64;
        for &c in &counts {
            prop_assert!((c as f64 - ideal).abs() <= ideal * 0.5 + 2.0,
                "bucket {c} vs ideal {ideal} (counts {counts:?})");
        }
    }

    /// Greedy set cover returns a valid cover within (ln n + 1) of the
    /// brute-force optimum on small instances.
    #[test]
    fn set_cover_near_optimal(
        sets in proptest::collection::vec(proptest::collection::vec(0usize..8, 1..5), 1..8),
        universe in 1usize..=8,
    ) {
        let r = greedy_set_cover(universe, &sets);
        // Brute force smallest complete cover.
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << sets.len()) {
            let mut covered = vec![false; universe];
            for (i, s) in sets.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    for &e in s {
                        if e < universe {
                            covered[e] = true;
                        }
                    }
                }
            }
            if covered.iter().all(|&c| c) {
                let size = mask.count_ones() as usize;
                best = Some(best.map_or(size, |b: usize| b.min(size)));
            }
        }
        match best {
            Some(opt) => {
                prop_assert!(r.complete);
                let h: f64 = (1..=universe).map(|i| 1.0 / i as f64).sum();
                prop_assert!(r.chosen.len() as f64 <= h * opt as f64 + 1e-9,
                    "greedy {} vs opt {opt}", r.chosen.len());
            }
            None => prop_assert!(!r.complete),
        }
    }

    /// Gonzalez t-clustering is a 2-approximation of the optimal diameter
    /// on small metric instances (brute-force over all assignments).
    #[test]
    fn gonzalez_two_approximation(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..8),
        t in 1usize..=3,
    ) {
        let pts: Vec<Vec<f64>> = points.iter().map(|&(x, y)| vec![x, y]).collect();
        let d = DistanceMatrix::euclidean(&pts);
        let c = t_clustering(&d, t, None);
        let t = c.centers.len();
        // Brute force optimal diameter over all t-partitions.
        let n = pts.len();
        let mut opt = f64::INFINITY;
        let mut assignment = vec![0usize; n];
        loop {
            let mut diam: f64 = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if assignment[i] == assignment[j] {
                        diam = diam.max(d.get(i, j));
                    }
                }
            }
            opt = opt.min(diam);
            // Next assignment in base-t.
            let mut carry = true;
            for slot in assignment.iter_mut() {
                if carry {
                    *slot += 1;
                    if *slot == t {
                        *slot = 0;
                    } else {
                        carry = false;
                    }
                }
            }
            if carry {
                break;
            }
        }
        prop_assert!(c.diameter(&d) <= 2.0 * opt + 1e-9,
            "gonzalez {} vs 2*opt {}", c.diameter(&d), 2.0 * opt);
    }
}
