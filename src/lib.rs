//! # hypermine
//!
//! A complete Rust implementation of *Mining Associations Using Directed
//! Hypergraphs* (ICDE 2012): model any multi-valued-attribute database as a
//! weighted directed hypergraph whose nodes are attributes and whose directed
//! hyperedges `(T, H)` capture many-to-one implication strength via an
//! *association confidence value* (ACV).
//!
//! The facade re-exports the workspace crates:
//!
//! - [`hypergraph`] — directed hypergraph substrate.
//! - [`data`] — multi-valued attribute databases `D(A, O, V)` and discretizers.
//! - [`market`] — synthetic S&P 500-style market simulator.
//! - [`approx`] — greedy set cover, dominating set, t-clustering, k-means.
//! - [`ml`] — baseline classifiers (perceptron, logistic regression, SVM, MLP).
//! - [`core`] — the paper's contribution: association hypergraphs, similarity,
//!   leading indicators, and the association-based classifier.
//! - [`serve`] — concurrent serving: epoch-tagged snapshots published through
//!   a lock-free cell, queried without locks or allocation while the window
//!   slides.
//! - [`experiments`] — the harness regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use hypermine::core::{ModelConfig, AssociationModel};
//! use hypermine::data::Database;
//!
//! // Discretized database: 3 attributes, 8 observations, values in 1..=3.
//! let db = Database::from_rows(
//!     vec!["A".into(), "B".into(), "C".into()],
//!     3,
//!     &[
//!         [1, 1, 2], [1, 2, 1], [2, 1, 3], [2, 2, 2],
//!         [1, 1, 2], [3, 3, 3], [2, 2, 2], [1, 1, 2],
//!     ],
//! )
//! .unwrap();
//!
//! let model = AssociationModel::build(&db, &ModelConfig::default()).unwrap();
//! assert!(model.hypergraph().num_nodes() == 3);
//! ```

pub use hypermine_approx as approx;
pub use hypermine_core as core;
pub use hypermine_data as data;
pub use hypermine_experiments as experiments;
pub use hypermine_hypergraph as hypergraph;
pub use hypermine_market as market;
pub use hypermine_ml as ml;
pub use hypermine_serve as serve;
