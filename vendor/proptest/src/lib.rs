//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace's property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro, `prop_assert*` / `prop_assume!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded by hashing
//! the test name), so failures reproduce exactly. There is no shrinking: a
//! failing case reports its generated inputs via `Debug` and panics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies. Newtype so strategy generation stays
/// decoupled from the `rand` shim's public traits.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    pub fn gen_usize(&mut self, range: Range<usize>) -> usize {
        self.0.gen_range(range)
    }

    pub fn gen_f64_unit(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

/// Deterministic per-test RNG; public because the `proptest!` expansion
/// calls it.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name gives a stable, name-unique seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng(StdRng::seed_from_u64(h))
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration; only `cases` is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of its value (upstream
/// proptest's `Just`), useful inside `prop_flat_map` to carry already
/// drawn values along.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // start + span * unit can round up to `end` when unit is close
                // to 1; resample to keep the half-open contract.
                loop {
                    let v = self.start + (self.end - self.start) * rng.gen_f64_unit() as $t;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted sizes for [`vec()`]: a fixed length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_usize(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} == {} (left: {:?}, right: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} != {} (both: {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Expands each `fn name(arg in strategy, ...) { body }` into a plain
/// `#[test]` that runs `cases` generated inputs. Rejected cases
/// (`prop_assume!`) are retried up to 20x the case budget.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    match result {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                passed + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
                assert!(
                    passed >= config.cases,
                    "prop_assume! rejected too many inputs: only {} of {} cases ran \
                     within {} attempts",
                    passed,
                    config.cases,
                    max_attempts
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = crate::Strategy::generate(&(1u8..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = crate::test_rng("compose");
        let strat = (2usize..=5, 1u8..=3)
            .prop_flat_map(|(n, k)| crate::collection::vec(1..=k, n).prop_map(move |v| (k, v)));
        for _ in 0..200 {
            let (k, v) = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..=k).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(mut v in crate::collection::vec(0usize..100, 1..10), x in 0u8..=1) {
            prop_assume!(!v.is_empty());
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(x & !1, 0);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
