//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact surface the workspace needs — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`seq::SliceRandom::shuffle`],
//! and [`seq::index::sample`] — backed by xoshiro256++ with SplitMix64
//! seeding. Streams are deterministic for a given seed, which is all the
//! simulator, ML trainers, and tests rely on; the streams do *not* match
//! upstream `rand`'s ChaCha12-based `StdRng` bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided —
/// it is the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from the "standard" distribution: `f64`/`f32` in
/// `[0, 1)`, full-range integers, fair `bool`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire's multiply-shift maps next_u64 uniformly onto the span
                // (bias < 2^-64, irrelevant at simulation scale).
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // start + span * unit can round up to `end` when unit is close
                // to 1; resample to keep the half-open contract.
                loop {
                    let unit = <$t as Standard>::sample(rng);
                    let v = self.start + (self.end - self.start) * unit;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256++). Drop-in for
    /// `rand::rngs::StdRng` minus bit-compatibility of the stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching upstream's iteration order convention
            // (high index down).
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        use super::super::Rng;

        /// Result of [`sample`]: distinct indices in `0..length`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Uniformly samples `amount` distinct indices from `0..length`
        /// (partial Fisher-Yates). Panics if `amount > length`.
        pub fn sample<R: Rng>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(0..=4u16);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(5);
        let idx = sample(&mut rng, 20, 8);
        assert_eq!(idx.len(), 8);
        let mut v = idx.into_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|&i| i < 20));
    }
}
