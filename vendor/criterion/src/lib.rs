//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's bench targets use: `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It is a real (if simple) wall-clock benchmark runner: each `iter` closure
//! is warmed up once, then timed over enough iterations to fill a small
//! per-benchmark budget, and the mean per-iteration time is printed. It has
//! none of criterion's statistics, reports, or baselines — the point is that
//! `cargo bench` builds and produces useful numbers without crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the bench targets already use).
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
const BUDGET_PER_BENCH: Duration = Duration::from_millis(300);

/// Identifies one benchmark within a group, e.g. `n40/k3`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark closure; `iter` does the measuring.
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration time of the most recent `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, also an estimate of per-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        // sample_size scales the time budget (upstream's default is 100), so
        // group.sample_size(10) still shortens slow benches, while the
        // iteration count itself comes from the budget — fast routines get a
        // window long enough to swamp Instant/scheduler noise.
        let budget_ns =
            BUDGET_PER_BENCH.as_nanos() * self.sample_size as u128 / DEFAULT_SAMPLE_SIZE as u128;
        let iters = (budget_ns / first.as_nanos()).clamp(1, 50_000_000) as usize;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / iters as u32);
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        last_mean: None,
    };
    f(&mut b);
    match b.last_mean {
        Some(mean) => println!("bench: {label:<50} {mean:>12.2?}/iter"),
        None => println!("bench: {label:<50} (no iter call)"),
    }
}

/// Top-level driver, one per bench target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert!(total >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("n40", "k3").to_string(), "n40/k3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
